"""Tests for the block-granular Hybrid overflow table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redundancy.overflow import OverflowTable
from repro.util.intervals import Extent

BS = 16  # stripe-unit block size for these tests


class TestAppendResolve:
    def test_empty_table(self):
        t = OverflowTable(BS)
        data, reads = t.resolve(0, 100)
        assert data == [Extent(0, 100)]
        assert reads == []

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            OverflowTable(0)

    def test_single_entry(self):
        t = OverflowTable(BS)
        pieces = t.append(2, 10)
        assert len(pieces) == 1
        assert pieces[0].ovf_offset == 2   # intra offset inside slot 0
        data, reads = t.resolve(0, BS)
        assert data == [Extent(0, 2), Extent(10, BS)]
        assert len(reads) == 1
        assert (reads[0].ovf_offset, reads[0].length,
                reads[0].local_start) == (2, 8, 2)

    def test_slot_allocation_is_block_granular(self):
        t = OverflowTable(BS)
        t.append(0, 4)
        assert t.allocated_bytes == BS  # a whole slot for 4 bytes
        assert t.live_bytes == 4

    def test_disjoint_updates_share_a_slot(self):
        # Sequential sub-block writes accumulate in one slot — this is
        # what keeps Hartree-Fock's Hybrid storage at exactly 2.0x.
        t = OverflowTable(BS)
        t.append(0, 4)
        t.append(4, 8)
        t.append(8, 16)
        assert t.allocated_bytes == BS
        assert t.live_bytes == BS

    def test_rewrite_burns_a_new_slot(self):
        # Overflow data is never overwritten: rewriting bytes the newest
        # slot already holds allocates afresh (FLASH's 64K fragmentation).
        t = OverflowTable(BS)
        t.append(0, 8)
        t.append(0, 8)
        assert t.allocated_bytes == 2 * BS
        assert t.live_bytes == 8
        assert t.fragmentation == 2 * BS - 8

    def test_latest_version_wins(self):
        t = OverflowTable(BS)
        t.append(0, 8)      # slot at 0
        t.append(0, 8)      # slot at BS
        _data, reads = t.resolve(0, 8)
        assert len(reads) == 1
        assert reads[0].ovf_offset == BS

    def test_partial_supersede_merges_versions(self):
        t = OverflowTable(BS)
        t.append(0, 10)     # slot 0 holds [0,10)
        t.append(4, 6)      # overlaps -> slot at BS holds [4,6)
        _data, reads = t.resolve(0, 10)
        got = sorted((r.local_start, r.length, r.ovf_offset) for r in reads)
        assert got == [(0, 4, 0), (4, 2, BS + 4), (6, 4, 6)]

    def test_multi_block_append(self):
        t = OverflowTable(BS)
        pieces = t.append(BS - 4, 2 * BS + 4)
        # Touches blocks 0, 1, 2 -> three slots.
        assert len(pieces) == 3
        assert t.allocated_bytes == 3 * BS
        assert t.live_bytes == BS + 8
        data, reads = t.resolve(BS - 4, 2 * BS + 4)
        assert data == []
        assert sum(r.length for r in reads) == BS + 8

    def test_empty_append_rejected(self):
        t = OverflowTable(BS)
        with pytest.raises(ValueError):
            t.append(5, 5)

    def test_resolve_empty_range(self):
        t = OverflowTable(BS)
        t.append(0, 10)
        assert t.resolve(5, 5) == ([], [])


class TestInvalidation:
    def test_invalidate_full(self):
        t = OverflowTable(BS)
        t.append(0, 10)
        t.invalidate(0, 10)
        data, reads = t.resolve(0, 10)
        assert data == [Extent(0, 10)]
        assert reads == []
        assert t.live_bytes == 0
        assert t.allocated_bytes == BS  # garbage remains until compaction

    def test_invalidate_partial(self):
        t = OverflowTable(BS)
        t.append(0, 10)
        t.invalidate(0, 4)
        data, reads = t.resolve(0, 10)
        assert data == [Extent(0, 4)]
        assert len(reads) == 1
        assert reads[0].local_start == 4

    def test_reappend_after_invalidate_uses_fresh_slot(self):
        t = OverflowTable(BS)
        t.append(0, 10)
        t.invalidate(0, 10)
        t.append(0, 5)
        data, reads = t.resolve(0, 10)
        assert data == [Extent(5, 10)]
        assert reads[0].ovf_offset == BS  # conservative: new slot

    def test_truncate(self):
        t = OverflowTable(BS)
        t.append(0, 10)
        t.truncate()
        assert t.allocated_bytes == 0
        assert t.resolve(0, 10) == ([Extent(0, 10)], [])


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["append", "invalidate"]),
                          st.integers(0, 64), st.integers(1, 32)),
                max_size=24))
def test_resolve_matches_reference_model(ops):
    """Latest-version-per-byte semantics against a naive model."""
    t = OverflowTable(BS)
    ref: dict[int, bytes] = {}
    stamp = 0
    written: dict[int, int] = {}  # byte -> stamp of latest append
    for op, start, size in ops:
        end = start + size
        if op == "append":
            stamp += 1
            t.append(start, end)
            for b in range(start, end):
                written[b] = stamp
        else:
            t.invalidate(start, end)
            for b in range(start, end):
                written.pop(b, None)
    data, reads = t.resolve(0, 96)
    data_bytes = {b for ext in data for b in range(ext.start, ext.end)}
    assert data_bytes == {b for b in range(96) if b not in written}
    covered_by_reads = set()
    for r in reads:
        for i in range(r.length):
            byte = r.local_start + i
            assert byte in written
            assert byte not in covered_by_reads  # no double provision
            covered_by_reads.add(byte)
    assert covered_by_reads == set(written) & set(range(96))
    # Accounting invariants.
    assert t.live_bytes == len(written)
    assert t.allocated_bytes % BS == 0
    assert t.allocated_bytes >= 0
