"""Failure injection, full server rebuild, scrub, and the reclaimer."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ConfigError, ServerFailed
from repro.redundancy import scrub
from repro.redundancy.recovery import rebuild_server
from repro.redundancy.reclaim import background_reclaimer, reclaim_file
from repro.units import KiB

UNIT = 4 * KiB


def make_system(scheme, servers=6, **kw):
    return System(CSARConfig(scheme=scheme, num_servers=servers,
                             num_clients=1, stripe_unit=UNIT,
                             content_mode=True, **kw))


def populate(system, name="f", seeds=(1, 2, 3)):
    """Mixed full/partial writes; returns the expected logical content."""
    span = system.layout.group_span
    client = system.client()
    chunks = [
        (0, Payload.pattern(3 * span, seed=seeds[0])),
        (3 * span + 50, Payload.pattern(700, seed=seeds[1])),
        (span + 13, Payload.pattern(span // 3, seed=seeds[2])),
    ]

    def work():
        yield from client.create(name)
        for offset, payload in chunks:
            yield from client.write(name, offset, payload)

    system.run(work())
    size = max(off + p.length for off, p in chunks)
    expected = Payload.zeros(size)
    for offset, payload in chunks:
        expected = expected.overlay(offset, payload).slice(0, size)
    return expected


def read_all(system, name, length):
    client = system.client()

    def work():
        out = yield from client.read(name, 0, length)
        return out

    return system.run(work())


class TestRebuild:
    @pytest.mark.parametrize("scheme", ["raid1", "raid5", "hybrid"])
    @pytest.mark.parametrize("failed", [0, 2, 5])
    def test_rebuild_restores_content_and_invariants(self, scheme, failed):
        system = make_system(scheme)
        expected = populate(system)
        system.fail_server(failed)
        system.run(rebuild_server(system, failed))
        assert read_all(system, "f", expected.length) == expected
        assert scrub.scrub(system, "f") == []
        assert system.metrics.get("failures.rebuilt") == 1

    def test_rebuild_survives_second_failure_elsewhere(self, ):
        # After rebuilding server 1, server 4 can fail and reads still work:
        # proof the rebuild restored real redundancy, not just a facade.
        system = make_system("hybrid")
        expected = populate(system)
        system.fail_server(1)
        system.run(rebuild_server(system, 1))
        system.fail_server(4)
        assert read_all(system, "f", expected.length) == expected

    def test_rebuild_requires_failed_server(self):
        system = make_system("raid1")
        populate(system)
        with pytest.raises(ServerFailed):
            system.run(rebuild_server(system, 0))

    def test_raid0_rebuild_rejected(self):
        system = make_system("raid0")
        populate(system)
        system.fail_server(0)
        with pytest.raises(ConfigError):
            system.run(rebuild_server(system, 0))

    def test_rebuild_takes_simulated_time(self):
        system = make_system("raid5")
        populate(system)
        t0 = system.env.now
        system.fail_server(3)
        system.run(rebuild_server(system, 3))
        assert system.env.now > t0


class TestReclaimer:
    def _hybrid_with_overflow(self):
        system = make_system("hybrid")
        span = system.layout.group_span
        client = system.client()

        def work():
            yield from client.create("f")
            # Full groups first, then lots of small overwrites -> overflow
            # with superseded versions (fragmentation).
            yield from client.write("f", 0, Payload.pattern(4 * span, seed=1))
            for k in range(6):
                yield from client.write("f", 100 + 37 * k,
                                        Payload.pattern(900, seed=10 + k))

        system.run(work())
        return system

    def test_reclaim_reduces_storage_to_raid5_form(self):
        system = self._hybrid_with_overflow()
        before = system.storage_report("f")
        assert before["ovf"] > 0
        report = system.run(reclaim_file(system, "f"))
        after = system.storage_report("f")
        assert report["after"]["allocated"] <= report["before"]["allocated"]
        # File size is group-aligned here, so overflow drains completely.
        assert after["ovf"] == 0
        assert after["ovfm"] == 0
        assert scrub.scrub(system, "f") == []

    def test_reclaim_preserves_content(self):
        system = self._hybrid_with_overflow()
        expected = read_all(system, "f", 4 * system.layout.group_span)
        system.run(reclaim_file(system, "f"))
        assert read_all(system, "f", expected.length) == expected

    def test_reclaim_keeps_subgroup_tail_in_overflow(self):
        system = make_system("hybrid")
        span = system.layout.group_span
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0,
                                    Payload.pattern(2 * span + 500, seed=3))

        system.run(work())
        system.run(reclaim_file(system, "f"))
        stats = system.overflow_stats("f")
        assert stats["live"] == 500     # the unaligned tail stays mirrored
        # Compaction leaves only slot padding (allocation is block-granular),
        # never whole superseded versions.
        assert stats["fragmentation"] < 2 * UNIT
        assert scrub.scrub(system, "f") == []

    def test_reclaim_rejected_for_non_hybrid(self):
        system = make_system("raid5")
        populate(system)
        with pytest.raises(ConfigError):
            system.run(reclaim_file(system, "f"))

    def test_background_reclaimer_fires(self):
        system = self._hybrid_with_overflow()
        system.env.process(background_reclaimer(
            system, interval=5.0, fragmentation_threshold=1))
        system.env.run(until=system.env.now + 20.0)
        assert system.metrics.get("hybrid.reclaims") >= 1
        assert system.overflow_stats("f")["fragmentation"] == 0
