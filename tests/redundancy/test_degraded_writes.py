"""Degraded writes: the cluster stays available while one server is down.

Each scenario verifies the full availability story: write during the
failure, read back correctly (degraded reads), rebuild the server, scrub
clean, and read again from the fully-repaired cluster.
"""

import pytest

from repro import CSARConfig, DataLoss, Payload, System
from repro.redundancy import scrub
from repro.redundancy.recovery import rebuild_server
from repro.units import KiB

UNIT = 4 * KiB


def make_system(scheme, servers=6, **kw):
    return System(CSARConfig(scheme=scheme, num_servers=servers,
                             num_clients=1, stripe_unit=UNIT,
                             content_mode=True, **kw))


def run_write(system, name, chunks):
    client = system.client()

    def work():
        from repro.errors import FileExists
        try:
            yield from client.create(name)
        except FileExists:
            yield from client.open(name)
        for offset, payload in chunks:
            yield from client.write(name, offset, payload)

    system.run(work())


def read_back(system, name, length):
    client = system.client()

    def work():
        out = yield from client.read(name, 0, length)
        return out

    return system.run(work())


def expected_content(chunks, length):
    out = Payload.zeros(length)
    for offset, payload in chunks:
        out = out.overlay(offset, payload).slice(0, length)
    return out


REDUNDANT = ["raid1", "raid5", "hybrid"]


class TestWriteDuringFailure:
    @pytest.mark.parametrize("scheme", REDUNDANT)
    @pytest.mark.parametrize("failed", [0, 3, 5])
    def test_mixed_writes_survive_one_failure(self, scheme, failed):
        system = make_system(scheme)
        span = system.layout.group_span
        before = [(0, Payload.pattern(2 * span, seed=1))]
        run_write(system, "f", before)
        system.fail_server(failed)
        during = [
            (2 * span, Payload.pattern(span, seed=2)),        # full group
            (3 * span + 37, Payload.pattern(999, seed=3)),    # small
            (span // 2, Payload.pattern(span // 3, seed=4)),  # overwrite
        ]
        run_write(system, "f", during)
        length = 4 * span
        expected = expected_content(before + during, length)
        assert read_back(system, "f", length) == expected
        assert system.metrics.get("client.degraded_writes") > 0

    @pytest.mark.parametrize("scheme", REDUNDANT)
    def test_rebuild_after_degraded_writes(self, scheme):
        system = make_system(scheme)
        span = system.layout.group_span
        before = [(0, Payload.pattern(2 * span, seed=5))]
        run_write(system, "f", before)
        system.fail_server(1)
        during = [(span // 4, Payload.pattern(span, seed=6)),
                  (2 * span + 11, Payload.pattern(777, seed=7))]
        run_write(system, "f", during)
        system.run(rebuild_server(system, 1))
        length = 3 * span
        expected = expected_content(before + during, length)
        assert read_back(system, "f", length) == expected
        assert scrub.scrub(system, "f") == []
        # The acid test: a different server can now fail.
        system.fail_server(4)
        assert read_back(system, "f", length) == expected

    def test_raid5_rmw_with_failed_data_server(self):
        # The delicate case: a partial-stripe write whose target block
        # lives on the failed server.  The parity update must imply the
        # new data via reconstruction of the old bytes.
        system = make_system("raid5")
        span = system.layout.group_span
        base = Payload.pattern(span, seed=8)
        run_write(system, "f", [(0, base)])
        # Block 0 lives on server 0; fail it, then rewrite part of block 0.
        system.fail_server(0)
        patch = Payload.pattern(UNIT // 2, seed=9)
        run_write(system, "f", [(100, patch)])
        expected = base.overlay(100, patch).slice(0, span)
        assert read_back(system, "f", span) == expected

    def test_raid5_rmw_with_failed_parity_server(self):
        system = make_system("raid5")
        span = system.layout.group_span
        base = Payload.pattern(span, seed=10)
        run_write(system, "f", [(0, base)])
        # Parity of group 0 lives on server n-1 = 5.
        assert system.layout.parity_server(0) == 5
        system.fail_server(5)
        patch = Payload.pattern(UNIT, seed=11)
        run_write(system, "f", [(UNIT + 5, patch)])
        expected = base.overlay(UNIT + 5, patch).slice(0, span)
        assert read_back(system, "f", span) == expected
        # After rebuild the parity is consistent again.
        system.run(rebuild_server(system, 5))
        assert scrub.scrub(system, "f") == []

    def test_hybrid_overflow_home_down_mirror_carries(self):
        system = make_system("hybrid")
        system.fail_server(0)  # home of block 0
        data = Payload.pattern(UNIT // 2, seed=12)
        run_write(system, "f", [(0, data)])  # partial stripe -> overflow
        assert read_back(system, "f", data.length) == data

    def test_hybrid_overflow_mirror_down_home_carries(self):
        system = make_system("hybrid")
        system.fail_server(1)  # mirror of server 0's overflow
        data = Payload.pattern(UNIT // 2, seed=13)
        run_write(system, "f", [(0, data)])
        assert read_back(system, "f", data.length) == data

    def test_raid0_write_to_failed_server_is_fatal(self):
        from repro.errors import ServerFailed

        system = make_system("raid0")
        system.fail_server(0)
        with pytest.raises(ServerFailed):
            run_write(system, "f", [(0, Payload.zeros(4 * UNIT))])

    def test_two_failures_are_data_loss(self):
        system = make_system("raid1")
        run_write(system, "f", [(0, Payload.zeros(12 * UNIT))])
        system.fail_server(0)
        system.fail_server(3)
        with pytest.raises(DataLoss):
            run_write(system, "f", [(0, Payload.zeros(12 * UNIT))])


class TestFailureSuspicion:
    def test_reads_fail_fast_after_first_failure(self):
        system = make_system("raid5")
        span = system.layout.group_span
        data = Payload.pattern(2 * span, seed=20)
        run_write(system, "f", [(0, data)])
        system.fail_server(1)
        assert read_back(system, "f", data.length) == data
        assert 1 in system.client(0).suspected
        # The second read never contacts the dead server.
        rx_before = system.metrics.node_rx_bytes.get("iod1", 0)
        assert read_back(system, "f", data.length) == data
        assert system.metrics.node_rx_bytes.get("iod1", 0) == rx_before
        assert system.metrics.get("client.failfast_reads") > 0

    def test_rebuild_clears_suspicion(self):
        from repro.redundancy.recovery import rebuild_server

        system = make_system("hybrid")
        span = system.layout.group_span
        data = Payload.pattern(2 * span, seed=21)
        run_write(system, "f", [(0, data)])
        system.fail_server(3)
        read_back(system, "f", data.length)
        assert 3 in system.client(0).suspected
        system.run(rebuild_server(system, 3))
        assert 3 not in system.client(0).suspected
        # Reads go to the rebuilt server again (no degraded path).
        before = system.metrics.get("client.degraded_reads")
        assert read_back(system, "f", data.length) == data
        assert system.metrics.get("client.degraded_reads") == before
