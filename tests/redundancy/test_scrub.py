"""The scrubber must actually detect corruption, not just pass clean
states — these tests inject damage directly into server state."""

import pytest

from repro import CSARConfig, Payload, System

# These tests corrupt server state and then scrub it; under
# CSAR_PARITYSAN=1 the scrub hook records those (intended) findings.
pytestmark = pytest.mark.paritysan_expected
from repro.errors import ConfigError
from repro.pvfs.iod import data_file, ovf_file, red_file
from repro.redundancy import scrub
from repro.units import KiB

UNIT = 4 * KiB


def make_system(scheme):
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=1,
                             stripe_unit=UNIT, content_mode=True))


def populate(system, name="f"):
    client = system.client()
    span = system.layout.group_span

    def work():
        yield from client.create(name)
        yield from client.write(name, 0, Payload.pattern(2 * span, seed=1))
        yield from client.write(name, 2 * span + 17,
                                Payload.pattern(500, seed=2))

    system.run(work())


def corrupt(blockfile, offset=0, n=4):
    old = blockfile.read(offset, n)
    flipped = Payload.from_bytes(bytes(b ^ 0xFF for b in old.to_bytes()))
    blockfile.write(offset, flipped)


class TestDetection:
    def test_clean_state_passes(self):
        for scheme in ("raid1", "raid5", "hybrid"):
            system = make_system(scheme)
            populate(system)
            assert scrub.scrub(system, "f") == []

    def test_raid1_detects_mirror_rot(self):
        system = make_system("raid1")
        populate(system)
        corrupt(system.iods[1].fs.files[red_file("f")])
        issues = scrub.scrub(system, "f")
        assert issues
        assert "mirror mismatch" in issues[0]

    def test_raid1_detects_data_rot(self):
        system = make_system("raid1")
        populate(system)
        corrupt(system.iods[0].fs.files[data_file("f")])
        assert scrub.scrub(system, "f")

    def test_raid5_detects_parity_rot(self):
        system = make_system("raid5")
        populate(system)
        corrupt(system.iods[5].fs.files[red_file("f")])  # parity of group 0
        issues = scrub.scrub(system, "f")
        assert any("parity mismatch" in i and "group 0" in i
                   for i in issues)

    def test_raid5_detects_data_rot(self):
        system = make_system("raid5")
        populate(system)
        corrupt(system.iods[2].fs.files[data_file("f")])
        assert scrub.scrub(system, "f")

    def test_hybrid_detects_overflow_rot(self):
        system = make_system("hybrid")
        populate(system)
        # Corrupt the primary overflow copy of the small write — at the
        # slot offset actually holding valid bytes (slots are padded).
        span = system.layout.group_span
        piece = system.layout.pieces(2 * span + 17, 1)[0]
        iod = system.iods[piece.server]
        table = iod.overflow["f"]
        ext = next(iter(table.covered))
        _gaps, reads = table.resolve(ext.start, ext.end)
        corrupt(iod.fs.files[ovf_file("f")], offset=reads[0].ovf_offset)
        issues = scrub.scrub(system, "f")
        assert any("overflow mirror mismatch" in i for i in issues)

    def test_hybrid_detects_inplace_rot(self):
        system = make_system("hybrid")
        populate(system)
        corrupt(system.iods[0].fs.files[data_file("f")])
        assert any("parity mismatch" in i
                   for i in scrub.scrub(system, "f"))

    def test_scrub_requires_content_mode(self):
        system = System(CSARConfig(scheme="raid5", num_servers=6,
                                   content_mode=False))
        with pytest.raises(ConfigError):
            scrub.scrub(system, "f")

    def test_raid0_always_clean(self):
        system = make_system("raid0")
        populate(system)
        corrupt(system.iods[0].fs.files[data_file("f")])
        assert scrub.scrub(system, "f") == []  # nothing to cross-check

    def test_scrub_then_rebuild_heals(self):
        # Full repair story: detect rot, rebuild the rotten server from
        # redundancy, verify clean.
        from repro.redundancy.recovery import rebuild_server

        system = make_system("raid5")
        populate(system)
        corrupt(system.iods[2].fs.files[data_file("f")])
        assert scrub.scrub(system, "f")
        system.fail_server(2)
        system.run(rebuild_server(system, 2))
        assert scrub.scrub(system, "f") == []


class TestOnlineScrub:
    def test_clean_pass_costs_time(self):
        from repro.redundancy.scrub import online_scrub

        system = make_system("raid5")
        populate(system)
        t0 = system.env.now
        issues = system.run(online_scrub(system, "f"))
        assert issues == []
        assert system.env.now > t0
        assert system.metrics.get("scrub.online_passes") == 1

    def test_detects_parity_rot_online(self):
        from repro.redundancy.scrub import online_scrub

        system = make_system("raid5")
        populate(system)
        corrupt(system.iods[5].fs.files[red_file("f")])
        issues = system.run(online_scrub(system, "f"))
        assert any("group 0" in i for i in issues)

    def test_raid1_online_scrub(self):
        from repro.redundancy.scrub import online_scrub

        system = make_system("raid1")
        populate(system)
        assert system.run(online_scrub(system, "f")) == []
        corrupt(system.iods[1].fs.files[red_file("f")])
        assert system.run(online_scrub(system, "f"))

    def test_raid0_online_scrub_trivially_clean(self):
        from repro.redundancy.scrub import online_scrub

        system = make_system("raid0")
        populate(system)
        assert system.run(online_scrub(system, "f")) == []

    def test_online_agrees_with_offline(self):
        from repro.redundancy.scrub import online_scrub

        system = make_system("hybrid")
        populate(system)
        corrupt(system.iods[0].fs.files[data_file("f")])
        offline = scrub.scrub(system, "f")
        online = system.run(online_scrub(system, "f"))
        # Both find the same corrupted groups (message formats differ).
        off_groups = {i.split("group ")[1].split(" ")[0]
                      for i in offline if "parity" in i}
        on_groups = {i.split("group ")[1].split(" ")[0]
                     for i in online if "parity" in i}
        assert off_groups == on_groups != set()
