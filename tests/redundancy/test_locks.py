"""Tests for the parity lock table (Section 5.1 protocol)."""

import pytest

from repro.errors import LockProtocolError
from repro.redundancy.locks import ParityLockTable
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestLockTable:
    def test_acquire_release(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 0, xid=1)
            assert table.is_locked("f", 0)
            table.release("f", 0, xid=1)
            assert not table.is_locked("f", 0)

        env.process(proc())
        env.run()
        assert table.acquisitions == 1
        assert table.contended_acquisitions == 0

    def test_fifo_contention(self, env):
        table = ParityLockTable(env)
        order = []

        def writer(xid, hold):
            yield from table.acquire("f", 0, xid=xid)
            order.append(xid)
            yield env.timeout(hold)
            table.release("f", 0, xid=xid)

        for xid in range(3):
            env.process(writer(xid, hold=1.0))
        env.run()
        assert order == [0, 1, 2]
        assert table.contended_acquisitions == 2
        assert table.total_wait_time == pytest.approx(1.0 + 2.0)

    def test_independent_groups_do_not_contend(self, env):
        table = ParityLockTable(env)
        starts = []

        def writer(group):
            yield from table.acquire("f", group, xid=group)
            starts.append((group, env.now))
            yield env.timeout(1.0)
            table.release("f", group, xid=group)

        for g in range(4):
            env.process(writer(g))
        env.run()
        assert all(t == 0 for _g, t in starts)

    def test_independent_files_do_not_contend(self, env):
        table = ParityLockTable(env)
        starts = []

        def writer(name):
            yield from table.acquire(name, 0, xid=hash(name) & 0xFF)
            starts.append(env.now)
            yield env.timeout(1.0)
            table.release(name, 0, xid=hash(name) & 0xFF)

        env.process(writer("a"))
        env.process(writer("b"))
        env.run()
        assert starts == [0, 0]

    def test_double_acquire_same_xid_rejected(self, env):
        table = ParityLockTable(env)

        def proc():
            yield from table.acquire("f", 0, xid=7)
            with pytest.raises(LockProtocolError):
                yield from table.acquire("f", 0, xid=7)
            table.release("f", 0, xid=7)

        env.process(proc())
        env.run()

    @pytest.mark.locksan_expected
    def test_release_without_hold_rejected(self, env):
        table = ParityLockTable(env)
        with pytest.raises(LockProtocolError):
            table.release("f", 0, xid=9)

    def test_disabled_table_never_blocks(self, env):
        table = ParityLockTable(env, enabled=False)
        starts = []

        def writer(xid):
            yield from table.acquire("f", 0, xid=xid)
            starts.append(env.now)
            yield env.timeout(1.0)
            table.release("f", 0, xid=xid)

        for xid in range(3):
            env.process(writer(xid))
        env.run()
        assert starts == [0, 0, 0]
        assert table.acquisitions == 0

    def test_ascending_order_prevents_deadlock(self, env):
        # Two writers both needing groups {3, 5}: because each acquires in
        # ascending order (the paper's rule), the run completes.
        table = ParityLockTable(env)
        finished = []

        def writer(xid):
            for group in (3, 5):
                yield from table.acquire("f", group, xid=xid)
                yield env.timeout(0.1)
            for group in (3, 5):
                table.release("f", group, xid=xid)
            finished.append(xid)

        env.process(writer(1))
        env.process(writer(2))
        env.run()
        assert sorted(finished) == [1, 2]

    def test_interrupt_while_queued_cancels_request(self, env):
        # A process interrupted while queued must not leak the lock:
        # the queued Request is cancelled and later writers still get
        # the lock (the bug class LockSan's leak check formalizes).
        from repro.sim.engine import Interrupt

        table = ParityLockTable(env)
        order = []

        def holder():
            yield from table.acquire("f", 0, xid=1)
            yield env.timeout(5.0)
            table.release("f", 0, xid=1)

        def impatient():
            try:
                yield from table.acquire("f", 0, xid=2)
            except Interrupt:
                order.append("interrupted")
                return
            pytest.fail("expected an interrupt")

        def canceller(victim):
            yield env.timeout(1.0)
            victim.interrupt("give up")

        def late_writer():
            yield env.timeout(2.0)
            yield from table.acquire("f", 0, xid=3)
            order.append(("locked", env.now))
            table.release("f", 0, xid=3)

        env.process(holder())
        victim = env.process(impatient())
        env.process(canceller(victim))
        env.process(late_writer())
        env.run()
        # The cancelled request is gone: xid 3 is granted the moment the
        # holder releases at t=5, not behind a ghost queue entry.
        assert order == ["interrupted", ("locked", 5.0)]
        assert not table.is_locked("f", 0)
        assert table.queue_length("f", 0) == 0

    def test_interrupt_before_acquire_starts_does_not_leak(self, env):
        from repro.sim.engine import Interrupt

        table = ParityLockTable(env)

        def holder():
            yield from table.acquire("f", 0, xid=1)
            yield env.timeout(3.0)
            table.release("f", 0, xid=1)

        def victim():
            try:
                yield from table.acquire("f", 0, xid=2)
            except Interrupt:
                pass

        def canceller(proc):
            yield env.timeout(0.5)
            proc.interrupt()

        env.process(holder())
        v = env.process(victim())
        env.process(canceller(v))
        env.run()
        assert not table.is_locked("f", 0)
