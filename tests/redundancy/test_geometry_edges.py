"""Scheme correctness at unusual cluster geometries.

The paper evaluates at 6 servers / 64 KiB units; a library must hold up
everywhere: minimum parity width (n=2), odd server counts, tiny and huge
stripe units, single-byte files.
"""

import pytest

from repro import CSARConfig, Payload, System
from repro.redundancy import scrub
from repro.units import KiB, MiB


def roundtrip_and_scrub(scheme, servers, unit, chunks):
    system = System(CSARConfig(scheme=scheme, num_servers=servers,
                               num_clients=1, stripe_unit=unit,
                               content_mode=True))
    client = system.client()

    def work():
        yield from client.create("f")
        for offset, payload in chunks:
            yield from client.write("f", offset, payload)

    system.run(work())
    size = max(off + p.length for off, p in chunks)
    expected = Payload.zeros(size)
    for off, p in chunks:
        expected = expected.overlay(off, p).slice(0, size)

    def read():
        out = yield from client.read("f", 0, size)
        return out

    assert system.run(read()) == expected
    assert scrub.scrub(system, "f") == []
    return system


MIXED = [(0, Payload.pattern(3000, seed=1)),
         (5000, Payload.pattern(123, seed=2)),
         (1000, Payload.pattern(4096, seed=3))]


class TestMinimumParityWidth:
    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_two_servers(self, scheme):
        # Group width 1: parity degenerates to a copy of the single data
        # block (RAID5 at n=2 is mirroring with extra steps).
        roundtrip_and_scrub(scheme, servers=2, unit=1 * KiB, chunks=MIXED)

    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_two_servers_failure(self, scheme):
        system = roundtrip_and_scrub(scheme, 2, 1 * KiB, MIXED)
        system.fail_server(0)
        client = system.client()

        def read():
            out = yield from client.read("f", 0, 3000)
            return out

        expected = Payload.pattern(3000, seed=1).overlay(
            1000, Payload.pattern(4096, seed=3)).slice(0, 3000)
        assert system.run(read()) == expected


class TestOddGeometries:
    @pytest.mark.parametrize("servers", [3, 5, 7, 11])
    def test_prime_server_counts(self, servers):
        roundtrip_and_scrub("hybrid", servers, 2 * KiB, MIXED)

    def test_tiny_stripe_unit(self):
        roundtrip_and_scrub("hybrid", 4, 64, MIXED)  # 64-byte units

    def test_huge_stripe_unit(self):
        # Everything fits inside one block: all writes are partial-stripe.
        system = roundtrip_and_scrub("hybrid", 6, 4 * MiB, MIXED)
        assert system.overflow_stats("f")["live"] > 0

    def test_single_byte_file(self):
        roundtrip_and_scrub("raid5", 6, 4 * KiB,
                            [(0, Payload.from_bytes(b"!"))])

    def test_write_at_large_offset(self):
        roundtrip_and_scrub("hybrid", 6, 4 * KiB,
                            [(10 * MiB, Payload.pattern(5000, seed=9))])


class TestRaid1SingleServer:
    def test_raid1_one_server_mirrors_to_itself(self):
        # Degenerate but allowed: documents the n=1 behaviour (mirror on
        # the same node protects against bit rot, not node loss).
        system = roundtrip_and_scrub("raid1", 1, 4 * KiB, MIXED)
        report = system.storage_report("f")
        assert report["red"] == report["data"]


class TestManyServers:
    def test_sixteen_servers(self):
        system = roundtrip_and_scrub(
            "raid5", 16, 4 * KiB,
            [(0, Payload.pattern(20 * 15 * 4 * KiB, seed=4))])
        # Parity overhead 1/15 at 16 servers.
        report = system.storage_report("f")
        assert report["red"] == pytest.approx(report["data"] / 15, rel=0.02)
