"""ParitySan (repro.analysis.paritysan): the runtime redundancy-invariant
sanitizer — clean schemes stay silent, seeded/injected corruption is
reported, and recovery/scrub hold up under explored schedules."""

import pytest

from repro import CSARConfig, Payload, System
from repro.analysis import paritysan, seeded_bugs
from repro.analysis.explore import RandomTieBreaker
from repro.analysis.paritysan import ParitySan, ParitySanReport
from repro.errors import ParitySanError
from repro.pvfs.iod import red_file
from repro.redundancy import scrub
from repro.redundancy.recovery import rebuild_server
from repro.sim import engine
from repro.units import KiB

UNIT = 4 * KiB


@pytest.fixture
def sanitized():
    """Install ParitySan for the test, restoring whatever was there."""
    prev = engine.paritysan_factory()
    paritysan.install()
    yield
    engine.set_paritysan_factory(prev)
    paritysan.drain_reports()


def make_system(scheme, **kw):
    kw.setdefault("content_mode", True)
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=1,
                             stripe_unit=UNIT, **kw))


def populate(system, name="f"):
    client = system.client()
    span = system.layout.group_span

    def work():
        yield from client.create(name)
        yield from client.write(name, 0, Payload.pattern(2 * span, seed=1))
        yield from client.write(name, 2 * span + 17,
                                Payload.pattern(500, seed=2))

    system.run(work())


def corrupt(blockfile, offset=0, n=4):
    old = blockfile.read(offset, n)
    flipped = Payload.from_bytes(bytes(b ^ 0xFF for b in old.to_bytes()))
    blockfile.write(offset, flipped)


class TestReports:
    def test_report_format(self):
        report = ParitySanReport(kind="parity", message="boom", file="f",
                                 sync_point="quiescent")
        assert report.format() == "ParitySan[parity] at quiescent: boom"

    def test_install_round_trip(self):
        prev = engine.paritysan_factory()
        try:
            paritysan.install()
            assert paritysan.installed()
        finally:
            engine.set_paritysan_factory(prev)
        assert paritysan.installed() == (prev is not None)


class TestCleanSchemes:
    @pytest.mark.parametrize("scheme", ["raid1", "raid5", "hybrid"])
    def test_populated_system_is_silent(self, sanitized, scheme):
        system = make_system(scheme)
        populate(system)
        assert system.env.paritysan is not None
        assert paritysan.drain_reports() == []

    def test_scrub_hook_silent_on_clean_state(self, sanitized):
        system = make_system("hybrid")
        populate(system)
        assert scrub.scrub(system, "f") == []
        assert paritysan.drain_reports() == []


class TestDetection:
    def test_quiescent_check_flags_parity_rot(self, sanitized):
        system = make_system("raid5")
        populate(system)
        paritysan.drain_reports()
        corrupt(system.iods[5].fs.files[red_file("f")])  # group 0 parity
        system.env.paritysan.on_quiescent()
        reports = paritysan.drain_reports()
        assert any(r.kind == "parity" and "group 0" in r.message
                   for r in reports)

    def test_scrub_findings_become_reports(self, sanitized):
        system = make_system("raid1")
        populate(system)
        paritysan.drain_reports()
        corrupt(system.iods[1].fs.files[red_file("f")])
        assert scrub.scrub(system, "f")  # the scrub itself sees it …
        reports = paritysan.drain_reports()
        assert any(r.kind == "scrub" for r in reports)  # … and reports it

    def test_strict_mode_raises(self):
        system = make_system("raid5")
        populate(system)
        san = ParitySan(strict=True)
        san.attach(system)
        corrupt(system.iods[5].fs.files[red_file("f")])
        with pytest.raises(ParitySanError):
            san.on_quiescent()
        paritysan.drain_reports()

    def test_overflow_structure_check(self, sanitized):
        system = make_system("hybrid")
        populate(system)
        paritysan.drain_reports()
        # Force two overflow slot versions onto the same storage offset.
        for iod in system.iods:
            for table in iod.overflow.values():
                versions = next(iter(table._slots.values()))
                versions.append(type(versions[0])(offset=versions[0].offset))
                break
            else:
                continue
            break
        else:
            pytest.skip("populate produced no overflow entries")
        system.env.paritysan.on_quiescent()
        reports = paritysan.drain_reports()
        assert any(r.kind == "overflow-structure"
                   and "alias" in r.message for r in reports)

    def test_seeded_inplace_overflow_bug_is_caught(self, sanitized):
        config = CSARConfig(scheme="hybrid", num_servers=4, num_clients=1,
                            stripe_unit=1024, content_mode=True)
        system = seeded_bugs.inject(
            System(config), seeded_bugs.InPlaceOverflowHybrid(config))
        client = system.client()
        span = system.layout.group_span

        def body():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.pattern(span, seed=1))
            yield from client.write("f", 100, Payload.pattern(300, seed=2))

        system.run(body())
        reports = paritysan.drain_reports()
        assert any(r.kind == "parity" and "parity mismatch" in r.message
                   for r in reports)


class TestDegradedWindows:
    def test_failed_server_suppresses_content_checks(self, sanitized):
        # A degraded array is legitimately inconsistent: no false alarms.
        system = make_system("raid5")
        populate(system)
        paritysan.drain_reports()
        system.fail_server(2)
        system.env.paritysan.on_quiescent()
        assert paritysan.drain_reports() == []


class TestExploredSchedules:
    """Satellite: recovery and scrub stay invariant-clean when message
    ties are broken adversarially (seeded random schedules)."""

    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_rebuild_clean_under_random_ties(self, sanitized, scheme):
        for seed in range(3):
            engine.set_tie_breaker_factory(
                lambda seed=seed: RandomTieBreaker(seed))
            try:
                system = make_system(scheme)
                populate(system)
                system.fail_server(2)
                system.replace_server(2)
                system.run(rebuild_server(system, 2))
                # on_recovery already checked; scrub double-checks.
                assert scrub.scrub(system, "f") == []
            finally:
                engine.set_tie_breaker_factory(None)
            assert paritysan.drain_reports() == [], \
                f"{scheme} rebuild dirty under tie seed {seed}"

    def test_scrub_clean_under_random_ties(self, sanitized):
        for seed in range(3):
            engine.set_tie_breaker_factory(
                lambda seed=seed: RandomTieBreaker(seed))
            try:
                system = make_system("hybrid")
                populate(system)
                assert scrub.scrub(system, "f") == []
            finally:
                engine.set_tie_breaker_factory(None)
            assert paritysan.drain_reports() == [], \
                f"scrub dirty under tie seed {seed}"

    def test_buggy_scheme_still_caught_under_random_ties(self, sanitized):
        engine.set_tie_breaker_factory(lambda: RandomTieBreaker(1))
        try:
            config = CSARConfig(scheme="hybrid", num_servers=4,
                                num_clients=1, stripe_unit=1024,
                                content_mode=True)
            system = seeded_bugs.inject(
                System(config), seeded_bugs.InPlaceOverflowHybrid(config))
            client = system.client()
            span = system.layout.group_span

            def body():
                yield from client.create("f")
                yield from client.write("f", 0,
                                        Payload.pattern(span, seed=1))
                yield from client.write("f", 100,
                                        Payload.pattern(300, seed=2))

            system.run(body())
        finally:
            engine.set_tie_breaker_factory(None)
        reports = paritysan.drain_reports()
        assert any(r.kind == "parity" for r in reports)
