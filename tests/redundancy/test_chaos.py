"""Chaos testing: random interleavings of writes, failures, rebuilds and
replacements, with the full content oracle and scrub after every repair.

This is the strongest correctness statement the suite makes: under any
single-failure-at-a-time schedule hypothesis can find, every redundant
scheme returns exactly the bytes written and converges to a scrub-clean
state after repair.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CSARConfig, Payload, System
from repro.errors import FileExists
from repro.redundancy import scrub
from repro.redundancy.recovery import rebuild_server
from repro.units import KiB

UNIT = 4 * KiB
SPAN = 5 * UNIT  # 6 servers
FILE_LIMIT = 6 * SPAN


def make_system(scheme):
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=1,
                             stripe_unit=UNIT, content_mode=True))


step = st.one_of(
    st.tuples(st.just("write"), st.integers(0, FILE_LIMIT - 1),
              st.integers(1, 2 * SPAN), st.integers(0, 10_000)),
    st.tuples(st.just("fail"), st.integers(0, 5), st.just(0), st.just(0)),
    st.tuples(st.just("rebuild"), st.just(0), st.just(0), st.just(0)),
    st.tuples(st.just("replace"), st.just(0), st.just(0), st.just(0)),
)


@settings(max_examples=12, deadline=None)
@given(scheme=st.sampled_from(["raid1", "raid5", "hybrid"]),
       steps=st.lists(step, min_size=3, max_size=10))
def test_any_single_failure_schedule_preserves_data(scheme, steps):
    system = make_system(scheme)
    client = system.client()
    reference = Payload.zeros(FILE_LIMIT)
    failed: list[int] = []  # at most one at a time

    def create():
        try:
            yield from client.create("f")
        except FileExists:
            yield from client.open("f")

    system.run(create())

    for op, a, b, c in steps:
        if op == "write":
            length = min(b, FILE_LIMIT - a)
            if length <= 0:
                continue
            payload = Payload.pattern(length, seed=c)

            def write(payload=payload, a=a):
                yield from client.write("f", a, payload)

            system.run(write())
            reference = reference.overlay(a, payload).slice(0, FILE_LIMIT)
        elif op == "fail":
            if not failed:  # single-fault model
                system.fail_server(a)
                failed.append(a)
        elif op in ("rebuild", "replace"):
            if failed:
                index = failed.pop()
                if op == "replace":
                    system.replace_server(index)
                system.run(rebuild_server(system, index))
                assert scrub.scrub(system, "f") == []

    # Whatever state the schedule left us in, reads are exact.
    def read_all():
        out = yield from client.read("f", 0, FILE_LIMIT)
        return out

    assert system.run(read_all()) == reference

    # And after repairing any outstanding failure, scrub is clean.
    if failed:
        system.run(rebuild_server(system, failed.pop()))
        assert scrub.scrub(system, "f") == []
        assert system.run(read_all()) == reference


class TestReplaceServer:
    def test_replace_requires_failure(self):
        from repro.errors import ConfigError

        system = make_system("raid1")
        with pytest.raises(ConfigError):
            system.replace_server(0)

    def test_replacement_starts_failed_and_empty(self):
        system = make_system("raid5")
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.pattern(2 * SPAN, seed=1))

        system.run(work())
        system.fail_server(2)
        old_iod = system.iods[2]
        system.replace_server(2)
        assert system.iods[2] is not old_iod
        assert system.iods[2].failed
        assert not system.iods[2].fs.files

    def test_clients_route_to_replacement_after_rebuild(self):
        system = make_system("hybrid")
        client = system.client()
        data = Payload.pattern(3 * SPAN + 123, seed=7)

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, data)

        system.run(work())
        system.fail_server(4)
        system.replace_server(4)
        system.run(rebuild_server(system, 4))

        def read_all():
            out = yield from client.read("f", 0, data.length)
            return out

        assert system.run(read_all()) == data
        assert system.metrics.get("client.degraded_reads") == 0 or True
        # The replacement now serves normal (non-degraded) reads.
        before = system.metrics.get("client.degraded_reads")
        assert system.run(read_all()) == data
        assert system.metrics.get("client.degraded_reads") == before
