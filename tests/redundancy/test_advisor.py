"""Tests for the scheme advisor, validated against simulation."""

import pytest

from repro import CSARConfig, Payload, StripeLayout, System
from repro.errors import ConfigError
from repro.redundancy.advisor import (
    advise,
    estimate,
    estimate_from_trace,
    recommend,
)
from repro.units import KiB
from repro.util.trace import Trace, TraceRecord

LAYOUT = StripeLayout(64 * KiB, 6)  # span = 320 KiB
SPAN = LAYOUT.group_span


class TestEstimates:
    def test_full_stripe_workload(self):
        est = estimate([(0, 10 * SPAN)], LAYOUT)
        assert est["raid5"].network_amplification == pytest.approx(1.2)
        assert est["hybrid"].network_amplification == pytest.approx(1.2)
        assert est["raid1"].network_amplification == 2.0
        assert est["hybrid"].rmw_phases == 0.0

    def test_small_write_workload(self):
        writes = [(i * SPAN, 64 * KiB) for i in range(10)]
        est = estimate(writes, LAYOUT)
        assert est["hybrid"].network_amplification == pytest.approx(2.0)
        assert est["raid5"].rmw_phases == 1.0
        assert est["raid5"].network_amplification > 2.0  # RMW reads

    def test_mixed_workload_interpolates(self):
        writes = [(0, 10 * SPAN), (20 * SPAN, 64 * KiB)]
        est = estimate(writes, LAYOUT)
        assert 1.2 < est["hybrid"].network_amplification < 2.0

    def test_no_traffic_rejected(self):
        with pytest.raises(ConfigError):
            estimate([], LAYOUT)
        with pytest.raises(ConfigError):
            estimate([(0, 0)], LAYOUT)

    def test_single_server_rejected(self):
        with pytest.raises(ConfigError):
            estimate([(0, 100)], StripeLayout(64 * KiB, 1))


class TestRecommendation:
    def test_large_writes_pick_a_parity_scheme(self):
        est = estimate([(0, 50 * SPAN)], LAYOUT)
        assert recommend(est) in ("raid5", "hybrid")

    def test_small_writes_pick_hybrid_or_raid1(self):
        writes = [(i * SPAN + 7, 8 * KiB) for i in range(20)]
        est = estimate(writes, LAYOUT)
        assert recommend(est) in ("raid1", "hybrid")

    def test_hybrid_wins_mixed_workloads(self):
        writes = [(0, 10 * SPAN)] + [(100 * SPAN + i * SPAN + 3, 16 * KiB)
                                     for i in range(10)]
        est = estimate(writes, LAYOUT)
        assert recommend(est) == "hybrid"

    def test_storage_weight_can_flip_to_raid5(self):
        # A half-partial workload: Hybrid wins on bandwidth, but its
        # overflow copies cost storage — weighting storage heavily flips
        # the recommendation to RAID5 (the traditional priority the paper
        # argues against).
        writes = [(0, 5 * SPAN)] + [((10 + i) * SPAN + 3, SPAN // 2)
                                    for i in range(10)]
        est = estimate(writes, LAYOUT)
        assert recommend(est, storage_weight=0.25) == "hybrid"
        assert recommend(est, storage_weight=10.0) == "raid5"


class TestAgainstSimulation:
    def _simulated_amplification(self, scheme, writes):
        system = System(CSARConfig(scheme=scheme, num_servers=6,
                                   num_clients=1, stripe_unit=64 * KiB,
                                   content_mode=False))
        client = system.client()

        def work():
            yield from client.create("f")
            for offset, length in writes:
                yield from client.write("f", offset,
                                        Payload.virtual(length))

        system.run(work())
        tx = system.metrics.node_tx_bytes["client0"]
        return tx / sum(length for _o, length in writes)

    @pytest.mark.parametrize("writes", [
        [(0, 10 * SPAN)],
        [(i * SPAN, 64 * KiB) for i in range(8)],
        [(0, 3 * SPAN), (10 * SPAN + 9, 100 * KiB)],
    ])
    def test_network_amplification_matches_simulation(self, writes):
        est = estimate(writes, LAYOUT)
        for scheme in ("raid1", "hybrid"):
            predicted = est[scheme].network_amplification
            measured = self._simulated_amplification(scheme, writes)
            assert measured == pytest.approx(predicted, rel=0.08)

    def test_trace_driven_advice(self):
        trace = Trace([TraceRecord(0.0, 0, "write", "f", i * SPAN + 3,
                                   12 * KiB) for i in range(10)]
                      + [TraceRecord(1.0, 0, "read", "f", 0, SPAN)])
        choice, ordered = advise(trace, LAYOUT)
        assert choice in ("raid1", "hybrid")
        assert ordered[0].network_amplification \
            <= ordered[-1].network_amplification
        # Reads are ignored by the estimator.
        est = estimate_from_trace(trace, LAYOUT)
        assert est["raid1"].network_amplification == 2.0
