"""Per-file redundancy selection (AutoRAID-flavoured extension).

One namespace can hold raid0 scratch files next to hybrid checkpoints;
every downstream mechanism (storage accounting, scrub, recovery,
reclaimer) dispatches on the file's scheme.
"""

import pytest

from repro import CSARConfig, DataLoss, Payload, System
from repro.errors import ProtocolError
from repro.redundancy import scrub
from repro.redundancy.recovery import rebuild_server
from repro.units import KiB

UNIT = 4 * KiB


def make_system(default="hybrid"):
    return System(CSARConfig(scheme=default, num_servers=6, num_clients=1,
                             stripe_unit=UNIT, content_mode=True))


def write_file(system, name, data, scheme=None):
    client = system.client()

    def work():
        yield from client.create(name, scheme=scheme)
        yield from client.write(name, 0, data)

    system.run(work())


def read_file(system, name, length):
    client = system.client()

    def work():
        out = yield from client.read(name, 0, length)
        return out

    return system.run(work())


class TestPerFileSchemes:
    def test_mixed_namespace_storage(self):
        system = make_system()
        span = system.layout.group_span
        data = Payload.pattern(4 * span, seed=1)
        write_file(system, "scratch", data, scheme="raid0")
        write_file(system, "mirrored", data, scheme="raid1")
        write_file(system, "checkpoint", data)  # deployment default
        scratch = system.storage_report("scratch")
        mirrored = system.storage_report("mirrored")
        ckpt = system.storage_report("checkpoint")
        assert scratch["total"] == data.length
        assert mirrored["total"] == 2 * data.length
        assert ckpt["total"] == pytest.approx(1.2 * data.length, rel=0.01)

    def test_roundtrips_per_scheme(self):
        system = make_system()
        span = system.layout.group_span
        for scheme in ("raid0", "raid1", "raid5", None):
            name = f"f-{scheme}"
            data = Payload.pattern(2 * span + 333, seed=hash(name) & 0xFF)
            write_file(system, name, data, scheme=scheme)
            assert read_file(system, name, data.length) == data

    def test_failure_semantics_follow_the_file(self):
        system = make_system()
        span = system.layout.group_span
        protected = Payload.pattern(2 * span, seed=5)
        exposed = Payload.pattern(2 * span, seed=6)
        write_file(system, "safe", protected)           # hybrid
        write_file(system, "scratch", exposed, scheme="raid0")
        system.fail_server(1)
        assert read_file(system, "safe", protected.length) == protected
        with pytest.raises(DataLoss):
            read_file(system, "scratch", exposed.length)

    def test_scrub_uses_file_scheme(self):
        system = make_system(default="raid5")
        span = system.layout.group_span
        write_file(system, "m", Payload.pattern(span, seed=7),
                   scheme="raid1")
        # A raid1 file in a raid5-default system must be mirror-checked.
        assert scrub.scrub(system, "m") == []
        from repro.pvfs.iod import red_file

        mirror = system.iods[1].fs.files[red_file("m")]
        old = mirror.read(0, 4)
        mirror.write(0, Payload.from_bytes(
            bytes(b ^ 0xFF for b in old.to_bytes())))
        assert any("mirror" in i for i in scrub.scrub(system, "m"))

    def test_rebuild_heals_mixed_namespace(self):
        system = make_system()
        span = system.layout.group_span
        a = Payload.pattern(2 * span + 50, seed=8)
        b = Payload.pattern(span + 99, seed=9)
        write_file(system, "hy", a)
        write_file(system, "mir", b, scheme="raid1")
        system.fail_server(2)
        system.run(rebuild_server(system, 2))
        assert read_file(system, "hy", a.length) == a
        assert read_file(system, "mir", b.length) == b
        assert scrub.scrub(system, "hy") == []
        assert scrub.scrub(system, "mir") == []

    def test_unknown_scheme_rejected_at_create(self):
        system = make_system()
        client = system.client()

        def work():
            with pytest.raises(ProtocolError):
                yield from client.create("x", scheme="raid6")

        system.run(work())

    def test_reclaimer_respects_file_scheme(self):
        from repro.errors import ConfigError
        from repro.redundancy.reclaim import reclaim_file

        system = make_system()
        write_file(system, "r0", Payload.zeros(UNIT), scheme="raid0")
        with pytest.raises(ConfigError):
            system.run(reclaim_file(system, "r0"))


class TestMixedNamespaceRecovery:
    def test_rebuild_skips_raid0_files_and_heals_the_rest(self):
        system = make_system()
        span = system.layout.group_span
        protected = Payload.pattern(2 * span, seed=30)
        exposed = Payload.pattern(2 * span, seed=31)
        write_file(system, "safe", protected)
        write_file(system, "scratch", exposed, scheme="raid0")
        system.fail_server(2)
        system.run(rebuild_server(system, 2))
        # Redundant file fully healed...
        assert read_file(system, "safe", protected.length) == protected
        assert scrub.scrub(system, "safe") == []
        # ...while the raid0 file's share is acknowledged lost: the
        # rebuilt server comes back with an empty data file, so the lost
        # stripe blocks read as zeros (PVFS semantics — this is exactly
        # the vulnerability the paper's redundancy removes).
        assert system.metrics.get("failures.raid0_files_lost") == 1
        out = read_file(system, "scratch", exposed.length)
        assert out != exposed
        lost_piece = system.layout.pieces(0, exposed.length)
        zeroed = [p for p in lost_piece if p.server == 2]
        assert zeroed, "server 2 held no share?"
        p = zeroed[0]
        assert out.slice(p.logical_offset, p.logical_offset + p.length) \
            == Payload.zeros(p.length)
