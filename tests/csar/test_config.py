"""Tests for CSARConfig validation and profile resolution."""

import pytest

from repro.csar.config import CSARConfig
from repro.errors import ConfigError
from repro.hw.params import get_profile
from repro.units import KiB, MiB


class TestValidation:
    def test_defaults_match_paper_setup(self):
        cfg = CSARConfig()
        assert cfg.scheme == "hybrid"
        assert cfg.num_servers == 6
        assert cfg.stripe_unit == 64 * KiB

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigError):
            CSARConfig(num_servers=0)

    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigError):
            CSARConfig(num_clients=0)

    def test_bad_stripe_unit_rejected(self):
        with pytest.raises(ConfigError):
            CSARConfig(stripe_unit=0)

    @pytest.mark.parametrize("scheme", ["raid5", "hybrid"])
    def test_parity_schemes_need_two_servers(self, scheme):
        with pytest.raises(ConfigError):
            CSARConfig(scheme=scheme, num_servers=1)

    def test_raid0_allows_single_server(self):
        assert CSARConfig(scheme="raid0", num_servers=1)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            CSARConfig(profile="beowulf")


class TestProfileResolution:
    def test_named_profile(self):
        cfg = CSARConfig(profile="osc")
        assert cfg.resolved_profile.name == "osc"

    def test_profile_object_passthrough(self):
        prof = get_profile("osu8")
        cfg = CSARConfig(profile=prof)
        assert cfg.resolved_profile is prof

    def test_scale_shrinks_cache(self):
        full = CSARConfig(profile="osu8")
        tenth = CSARConfig(profile="osu8", scale=0.1)
        assert tenth.resolved_profile.cache.capacity == pytest.approx(
            full.resolved_profile.cache.capacity * 0.1, rel=0.01)

    def test_scale_does_not_touch_rates(self):
        full = CSARConfig(profile="osu8")
        tenth = CSARConfig(profile="osu8", scale=0.1)
        assert (tenth.resolved_profile.network.bandwidth
                == full.resolved_profile.network.bandwidth)
        assert (tenth.resolved_profile.disk.bandwidth
                == full.resolved_profile.disk.bandwidth)

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            CSARConfig(scale=-1)

    def test_scaled_cache_has_floor(self):
        cfg = CSARConfig(scale=1e-9)
        assert cfg.resolved_profile.cache.capacity >= \
            4 * cfg.resolved_profile.cache.block_size

    def test_dirty_limits_derived(self):
        cache = CSARConfig().resolved_profile.cache
        assert 0 < cache.background_limit < cache.dirty_limit \
            < cache.capacity

    def test_profile_registry_complete(self):
        from repro.hw.params import PROFILES
        assert set(PROFILES) == {"osu8", "osc"}
        for prof in PROFILES.values():
            assert prof.cache.capacity > 64 * MiB
            assert prof.network.bandwidth > 0
            assert prof.cpu.byte_rate < prof.network.bandwidth
