"""System-level integration tests."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ConfigError, FileExists, FileNotFound
from repro.units import KiB


def make_system(**kw):
    kw.setdefault("scheme", "hybrid")
    kw.setdefault("num_servers", 6)
    kw.setdefault("stripe_unit", 16 * KiB)
    kw.setdefault("content_mode", True)
    return System(CSARConfig(**kw))


class TestAssembly:
    def test_node_counts(self):
        system = make_system(num_servers=4, num_clients=3)
        assert len(system.iods) == 4
        assert len(system.clients) == 3
        assert len(system.server_nodes) == 4

    def test_shared_metrics_object(self):
        system = make_system()
        assert system.iods[0].metrics is system.metrics
        assert system.clients[0].metrics is system.metrics

    def test_run_requires_processes(self):
        with pytest.raises(ConfigError):
            make_system().run()

    def test_timed_returns_elapsed_and_value(self):
        system = make_system()

        def proc():
            yield system.env.timeout(2.5)
            return "done"

        elapsed, value = system.timed(proc())
        assert elapsed == 2.5
        assert value == "done"

    def test_run_multiple_returns_all_values(self):
        system = make_system()

        def proc(k):
            yield system.env.timeout(k)
            return k

        values = system.run(proc(1), proc(2))
        assert values == [1, 2]


class TestNamespace:
    def test_create_open_roundtrip(self):
        system = make_system()
        client = system.client()

        def work():
            meta = yield from client.create("f")
            again = yield from client.open("f")
            return meta, again

        meta, again = system.run(work())
        assert meta is again  # cached handle

    def test_double_create_rejected(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            with pytest.raises(FileExists):
                yield from client.create("f")

        system.run(work())

    def test_open_missing_rejected(self):
        system = make_system()
        client = system.client()

        def work():
            with pytest.raises(FileNotFound):
                yield from client.open("ghost")

        system.run(work())

    def test_unlink(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.unlink("f")
            with pytest.raises(FileNotFound):
                yield from client.open("f")

        system.run(work())

    def test_meta_size_tracks_writes(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 100, Payload.zeros(50))
            yield from client.write("f", 10, Payload.zeros(5))

        system.run(work())
        assert system.manager.files["f"].size == 150

    def test_two_clients_share_namespace(self):
        system = make_system(num_clients=2)
        data = Payload.pattern(10 * KiB, seed=4)

        def writer():
            c = system.client(0)
            yield from c.create("f")
            yield from c.write("f", 0, data)

        system.run(writer())

        def reader():
            c = system.client(1)
            out = yield from c.read("f", 0, data.length)
            return out

        assert system.run(reader()) == data


class TestControls:
    def test_drop_all_caches_forces_cold_reads(self):
        system = make_system()
        client = system.client()

        def write():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(256 * KiB))

        system.run(write())
        system.drop_all_caches()
        reads_before = sum(iod.node.disk.reads for iod in system.iods)

        def read():
            yield from client.read("f", 0, 256 * KiB)

        system.run(read())
        assert sum(iod.node.disk.reads for iod in system.iods) > reads_before

    def test_sync_all_flushes_dirty(self):
        system = make_system()
        client = system.client()

        def write():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(256 * KiB))

        system.run(write())
        system.sync_all()
        assert all(iod.node.cache.dirty_bytes == 0 for iod in system.iods)

    def test_fail_server_counted(self):
        system = make_system()
        system.fail_server(1)
        assert system.iods[1].failed
        assert system.metrics.get("failures.injected") == 1


class TestAccounting:
    def test_storage_report_empty_file(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")

        system.run(work())
        report = system.storage_report("f")
        assert report["total"] == 0

    def test_overflow_stats_empty(self):
        system = make_system()
        assert system.overflow_stats("nope") == {
            "live": 0, "allocated": 0, "fragmentation": 0}

    def test_raid0_report_has_no_redundancy(self):
        system = make_system(scheme="raid0")
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(100 * KiB))

        system.run(work())
        report = system.storage_report("f")
        assert report["data"] == 100 * KiB
        assert report["red"] == report["ovf"] == report["ovfm"] == 0


class TestDeterminism:
    def test_identical_runs_identical_timing(self):
        def run_once():
            system = make_system(scheme="raid5", num_clients=3,
                                 content_mode=False)
            from repro.workloads.romio_perf import perf_benchmark
            results = perf_benchmark(system, buffer_size=512 * KiB, rounds=2)
            return (results["write"].elapsed, results["read"].elapsed,
                    system.metrics.get("net.bytes"))

        assert run_once() == run_once()
