"""Tests for the claim-checklist report."""

from repro.cli import main
from repro.experiments.base import ExpTable
from repro.experiments.report import CLAIMS, Claim, run_report


class TestClaimMachinery:
    def test_claims_cover_every_figure_family(self):
        experiments = {c.experiment for c in CLAIMS}
        assert {"fig3", "fig4a", "fig4b", "fig5a", "fig6b", "fig7a",
                "fig8", "table2"} <= experiments

    def test_report_runs_each_experiment_once(self):
        calls = []

        def fake_check(table):
            return True, "ok"

        # Two claims on one (cheap) experiment: fig1 must run once.
        claims = [Claim("fig1", "a", fake_check),
                  Claim("fig1", "b", fake_check)]
        text, ok = run_report(claims=claims)
        assert ok
        assert text.count("[PASS]") == 2
        del calls

    def test_failing_claim_flips_verdict(self):
        claims = [Claim("fig1", "always fails",
                        lambda t: (False, "nope"))]
        text, ok = run_report(claims=claims)
        assert not ok
        assert "[FAIL]" in text
        assert "SOME CLAIMS FAILED" in text

    def test_fast_claims_pass_at_default_scale(self):
        # The cheap microbenchmark claims run in seconds and must pass.
        fast = [c for c in CLAIMS if c.experiment in ("fig3", "fig4b")]
        text, ok = run_report(claims=fast)
        assert ok, text


class TestCli:
    def test_report_command_wires_up(self, capsys, monkeypatch):
        import repro.experiments.report as report_mod

        monkeypatch.setattr(
            report_mod, "run_report",
            lambda scale=None: ("# stub\n[PASS] x", True))
        assert main(["report"]) == 0
        assert "[PASS]" in capsys.readouterr().out
