"""Tests for the experiment framework: tables, registry, tiny-scale runs.

Benchmark-grade shape assertions live in ``benchmarks/``; these tests
cover the machinery and that each experiment *runs* at minimal scale.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import REGISTRY, get_experiment
from repro.experiments.base import ExpTable, list_experiments


class TestExpTable:
    def make(self):
        return ExpTable("t", "demo", ["k", "a", "b"])

    def test_add_row_and_column(self):
        t = self.make()
        t.add_row("x", 1, 2)
        t.add_row("y", 3, 4)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2, 4]

    def test_row_width_checked(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.add_row("x", 1)

    def test_cell_lookup(self):
        t = self.make()
        t.add_row("x", 1, 2)
        assert t.cell("x", "b") == 2
        with pytest.raises(KeyError):
            t.cell("nope", "b")

    def test_format_contains_everything(self):
        t = self.make()
        t.add_row("x", 1.5, 2)
        t.notes.append("a note")
        out = t.format()
        assert "demo" in out
        assert "1.50" in out
        assert "a note" in out
        # Aligned: header row and data row have same display width.
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2])


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"fig1", "fig3", "fig4a", "fig4b", "fig5a", "fig5b",
                    "fig6a", "fig6b", "fig7a", "fig7b", "fig8", "table2",
                    "ablation-writebuf", "ablation-parity",
                    "ablation-stripe-unit"}
        assert expected <= set(REGISTRY)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_list_is_sorted(self):
        ids = [e.id for e in list_experiments()]
        assert ids == sorted(ids)


class TestTinyScaleRuns:
    """Each experiment must complete and produce a well-formed table even
    at aggressive down-scaling (smoke only — shapes are benchmarks' job).
    """

    @pytest.mark.parametrize("exp_id,scale", [
        ("fig1", 1.0),
        ("fig3", 0.1),
        ("fig4a", 0.1),
        ("fig4b", 0.1),
        ("fig5a", 0.25),
        ("fig5b", 0.25),
        ("ablation-writebuf", 0.25),
        ("ablation-parity", 0.25),
    ])
    def test_experiment_runs(self, exp_id, scale):
        table = get_experiment(exp_id).run(scale=scale)
        assert table.rows
        assert all(len(r) == len(table.headers) for r in table.rows)
        assert table.format()

    @pytest.mark.parametrize("exp_id", ["fig6a", "fig7b"])
    def test_btio_experiments_run_at_minimum_scale(self, exp_id):
        table = get_experiment(exp_id).run(scale=0.025)
        assert [row[0] for row in table.rows] == [4, 9, 16, 25]
        for row in table.rows:
            assert all(v > 0 for v in row[1:])

    def test_fig8_runs_small(self):
        table = get_experiment("fig8").run(scale=0.02)
        assert len(table.rows) == 4
        for row in table.rows:
            assert row[1] == pytest.approx(1.0)  # raid0 normalized

    def test_table2_runs_small(self):
        table = get_experiment("table2").run(scale=0.02)
        assert len(table.rows) == 9
        for row in table.rows:
            raid0, raid1 = row[1], row[2]
            assert raid1 == pytest.approx(2 * raid0, rel=0.02)
