"""Tests for I/O trace capture and replay."""

import io

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ConfigError
from repro.units import KiB
from repro.util.trace import Trace, TraceRecord, TraceRecorder


def make_system(clients=2, scheme="hybrid", **kw):
    kw.setdefault("stripe_unit", 16 * KiB)
    kw.setdefault("content_mode", False)
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, **kw))


def capture_workload(system):
    recorder = TraceRecorder(system)

    def rank_proc(rank):
        client = system.client(rank)
        if rank == 0:
            yield from client.create("app.dat")
        else:
            yield system.env.timeout(0.001)
            yield from client.open("app.dat")
        for i in range(4):
            yield from client.write("app.dat", (rank * 4 + i) * 32 * KiB,
                                    Payload.virtual(32 * KiB))
        yield from client.read("app.dat", rank * 128 * KiB, 1 * KiB)

    system.run(*[rank_proc(r) for r in range(len(system.clients))])
    return recorder.detach()


class TestCapture:
    def test_records_everything(self):
        system = make_system()
        trace = capture_workload(system)
        assert len(trace) == 2 * 5  # 4 writes + 1 read per client
        assert {r.client for r in trace} == {0, 1}
        assert trace.files() == ["app.dat"]

    def test_timestamps_monotone_per_client(self):
        system = make_system()
        trace = capture_workload(system)
        for client in (0, 1):
            times = [r.time for r in trace if r.client == client]
            assert times == sorted(times)

    def test_detach_stops_recording(self):
        system = make_system()
        capture_workload(system)

        def extra():
            yield from system.client(0).write("app.dat", 0,
                                              Payload.virtual(100))

        before = len(capture_workload.__defaults__ or ())
        del before
        system.run(extra())  # tracer detached: no error, no new records

    def test_stats(self):
        trace = Trace([
            TraceRecord(0.0, 0, "write", "f", 0, 1000),
            TraceRecord(0.1, 0, "write", "f", 1000, 3000),
            TraceRecord(0.2, 0, "read", "f", 0, 500),
        ])
        stats = trace.stats("write")
        assert stats["count"] == 2
        assert stats["bytes"] == 4000
        assert stats["small_fraction_2k"] == 0.5
        assert trace.stats("read")["count"] == 1
        assert trace.stats("fsync") == {"count": 0, "bytes": 0}


class TestPersistence:
    def test_dump_load_roundtrip(self):
        system = make_system()
        trace = capture_workload(system)
        buf = io.StringIO()
        trace.dump(buf)
        buf.seek(0)
        loaded = Trace.load(buf)
        assert loaded.records == trace.records

    def test_load_skips_blank_lines(self):
        buf = io.StringIO(
            '{"time": 0.0, "client": 0, "op": "write", "file": "f", '
            '"offset": 0, "length": 10}\n\n')
        assert len(Trace.load(buf)) == 1


class TestReplay:
    def test_replay_reissues_same_io(self):
        system = make_system()
        trace = capture_workload(system)
        target = make_system(scheme="raid5")
        target.run(trace.replay(target))
        written = sum(r.length for r in trace if r.op == "write")
        read = sum(r.length for r in trace if r.op == "read")
        assert target.metrics.get("client.bytes_written") == written
        assert target.metrics.get("client.bytes_read") == read

    def test_replay_across_schemes_changes_timing(self):
        system = make_system(scheme="raid0")
        trace = capture_workload(system)
        times = {}
        for scheme in ("raid0", "raid1"):
            target = make_system(scheme=scheme)
            times[scheme], _ = target.timed(trace.replay(target))
        assert times["raid1"] > times["raid0"]

    def test_preserve_timing_stretches_replay(self):
        trace = Trace([
            TraceRecord(0.0, 0, "write", "f", 0, 1024),
            TraceRecord(5.0, 0, "write", "f", 1024, 1024),
        ])
        target = make_system(clients=1)
        closed, _ = target.timed(trace.replay(target))
        target2 = make_system(clients=1)
        timed, _ = target2.timed(trace.replay(target2,
                                              preserve_timing=True))
        assert timed >= 5.0 > closed

    def test_replay_needs_enough_clients(self):
        trace = Trace([TraceRecord(0.0, 7, "write", "f", 0, 10)])
        target = make_system(clients=1)
        with pytest.raises(ConfigError):
            target.run(trace.replay(target))

    def test_replay_rejects_unknown_op(self):
        trace = Trace([TraceRecord(0.0, 0, "chmod", "f", 0, 10)])
        target = make_system(clients=1)
        with pytest.raises(ConfigError):
            target.run(trace.replay(target))
