"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments.base import ExpTable
from repro.util.charts import (
    bar_chart,
    chart_table,
    grouped_bar_chart,
    line_chart,
)


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart(["long-label", "x"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        assert "12.3" in bar_chart(["a"], [12.3])

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"


class TestGroupedBarChart:
    def test_groups_per_row(self):
        out = grouped_bar_chart(["app1", "app2"],
                                {"raid1": [1.0, 2.0], "raid5": [2.0, 1.0]})
        assert "app1:" in out and "app2:" in out
        assert out.count("raid1") == 2


class TestLineChart:
    def test_extremes_on_grid(self):
        out = line_chart([1, 2, 3], {"s": [0.0, 5.0, 10.0]}, height=8,
                         width=20)
        lines = out.splitlines()
        assert "o" in lines[0]          # max lands on the top row
        assert "10.0" in lines[0]
        assert "s" in lines[-1]         # legend

    def test_none_values_skipped(self):
        out = line_chart([1, 2, 3], {"s": [None, 1.0, 2.0]})
        assert "o" in out

    def test_multiple_series_get_distinct_markers(self):
        out = line_chart([1, 2], {"a": [1, 2], "b": [2, 1]})
        assert "o=a" in out and "x=b" in out

    def test_all_none(self):
        assert line_chart([1], {"s": [None]}, title="t") == "t"


class TestChartTable:
    def test_numeric_first_column_becomes_line_chart(self):
        t = ExpTable("x", "bw", ["iods", "raid0"])
        t.add_row(1, 10.0)
        t.add_row(2, 20.0)
        out = chart_table(t)
        assert "o=raid0" in out

    def test_categorical_single_column_becomes_bars(self):
        t = ExpTable("x", "bw", ["config", "mbps"])
        t.add_row("RAID0", 50.0)
        t.add_row("RAID5", 25.0)
        out = chart_table(t)
        assert "RAID0" in out and "█" in out

    def test_categorical_multi_column_becomes_grouped(self):
        t = ExpTable("x", "t", ["app", "raid1", "raid5"])
        t.add_row("FLASH", 1.5, 1.6)
        out = chart_table(t)
        assert "FLASH:" in out

    def test_non_numeric_falls_back_to_table(self):
        t = ExpTable("x", "t", ["a", "b"])
        t.add_row("k", "v")
        assert "==" in chart_table(t)

    def test_every_registered_experiment_chartable(self):
        # Smoke: chart_table must not crash on any experiment's shape.
        from repro.experiments import get_experiment

        for exp_id in ("fig1", "fig2", "fig3"):
            table = get_experiment(exp_id).run(scale=0.1)
            assert chart_table(table)
