"""Unit and property tests for half-open extent arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Extent, ExtentMap


class TestExtent:
    def test_length(self):
        assert Extent(2, 10).length == 8

    def test_empty(self):
        assert Extent(3, 3).is_empty()
        assert not Extent(3, 4).is_empty()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Extent(5, 2)
        with pytest.raises(ValueError):
            Extent(-1, 2)

    def test_contains_half_open(self):
        e = Extent(2, 5)
        assert e.contains(2)
        assert e.contains(4)
        assert not e.contains(5)
        assert not e.contains(1)

    def test_overlaps(self):
        assert Extent(0, 5).overlaps(Extent(4, 9))
        assert not Extent(0, 5).overlaps(Extent(5, 9))

    def test_intersect(self):
        assert Extent(0, 10).intersect(Extent(5, 20)) == Extent(5, 10)
        assert Extent(0, 5).intersect(Extent(7, 9)).is_empty()

    def test_shift(self):
        assert Extent(3, 7).shift(10) == Extent(13, 17)


class TestExtentMapBasics:
    def test_empty_map(self):
        m = ExtentMap()
        assert len(m) == 0
        assert not m
        assert m.total() == 0
        assert m.max_end() == 0

    def test_single_add(self):
        m = ExtentMap()
        m.add(10, 20)
        assert list(m) == [Extent(10, 20)]
        assert m.total() == 10
        assert m.max_end() == 20

    def test_zero_length_add_is_noop(self):
        m = ExtentMap()
        m.add(5, 5)
        assert not m

    def test_merge_adjacent(self):
        m = ExtentMap([(0, 4), (4, 8)])
        assert list(m) == [Extent(0, 8)]

    def test_merge_overlapping(self):
        m = ExtentMap([(0, 6), (4, 10)])
        assert list(m) == [Extent(0, 10)]

    def test_disjoint_stay_separate(self):
        m = ExtentMap([(0, 4), (6, 8)])
        assert list(m) == [Extent(0, 4), Extent(6, 8)]

    def test_add_bridging_gap(self):
        m = ExtentMap([(0, 4), (8, 12)])
        m.add(4, 8)
        assert list(m) == [Extent(0, 12)]

    def test_add_swallowing_many(self):
        m = ExtentMap([(0, 1), (2, 3), (4, 5), (6, 7)])
        m.add(0, 10)
        assert list(m) == [Extent(0, 10)]

    def test_remove_middle_splits(self):
        m = ExtentMap([(0, 10)])
        m.remove(3, 7)
        assert list(m) == [Extent(0, 3), Extent(7, 10)]

    def test_remove_edges(self):
        m = ExtentMap([(0, 10)])
        m.remove(0, 3)
        m.remove(8, 10)
        assert list(m) == [Extent(3, 8)]

    def test_remove_spanning_many(self):
        m = ExtentMap([(0, 2), (4, 6), (8, 10)])
        m.remove(1, 9)
        assert list(m) == [Extent(0, 1), Extent(9, 10)]

    def test_remove_nothing(self):
        m = ExtentMap([(0, 2)])
        m.remove(4, 8)
        assert list(m) == [Extent(0, 2)]

    def test_remove_exact_boundary_noop(self):
        # removing [2,4) from [0,2) must not touch it (half-open).
        m = ExtentMap([(0, 2)])
        m.remove(2, 4)
        assert list(m) == [Extent(0, 2)]

    def test_invalid_ranges_rejected(self):
        m = ExtentMap()
        with pytest.raises(ValueError):
            m.add(5, 3)
        with pytest.raises(ValueError):
            m.remove(5, 3)

    def test_clear(self):
        m = ExtentMap([(0, 4)])
        m.clear()
        assert not m


class TestExtentMapQueries:
    def test_contains_full_cover(self):
        m = ExtentMap([(0, 10)])
        assert m.contains(0, 10)
        assert m.contains(3, 7)
        assert not m.contains(5, 11)

    def test_contains_empty_range_always_true(self):
        assert ExtentMap().contains(5, 5)

    def test_contains_across_gap_false(self):
        m = ExtentMap([(0, 4), (6, 10)])
        assert not m.contains(2, 8)

    def test_contains_offset(self):
        m = ExtentMap([(2, 5)])
        assert m.contains_offset(2)
        assert m.contains_offset(4)
        assert not m.contains_offset(5)
        assert not m.contains_offset(0)

    def test_overlap_clips(self):
        m = ExtentMap([(0, 4), (6, 10)])
        assert m.overlap(2, 8) == [Extent(2, 4), Extent(6, 8)]

    def test_overlap_none(self):
        m = ExtentMap([(0, 4)])
        assert m.overlap(4, 8) == []

    def test_gaps(self):
        m = ExtentMap([(2, 4), (6, 8)])
        assert m.gaps(0, 10) == [Extent(0, 2), Extent(4, 6), Extent(8, 10)]

    def test_gaps_fully_covered(self):
        m = ExtentMap([(0, 10)])
        assert m.gaps(2, 8) == []

    def test_gaps_fully_uncovered(self):
        assert ExtentMap().gaps(3, 9) == [Extent(3, 9)]

    def test_copy_is_independent(self):
        m = ExtentMap([(0, 4)])
        c = m.copy()
        c.add(10, 12)
        assert list(m) == [Extent(0, 4)]
        assert m == ExtentMap([(0, 4)])
        assert c != m


class TestIteratorVariants:
    """The tuple-yielding hot-path iterators must agree with the
    Extent-returning public API."""

    def test_iter_tuples_matches_iter(self):
        m = ExtentMap([(0, 4), (6, 10), (20, 25)])
        assert list(m.iter_tuples()) == [
            (e.start, e.end) for e in m]

    def test_overlap_iter_matches_overlap(self):
        m = ExtentMap([(0, 4), (6, 10), (20, 25)])
        for lo, hi in [(0, 30), (2, 8), (4, 6), (10, 20), (23, 40)]:
            assert list(m.overlap_iter(lo, hi)) == [
                (e.start, e.end) for e in m.overlap(lo, hi)]

    def test_gaps_iter_matches_gaps(self):
        m = ExtentMap([(2, 4), (6, 8)])
        for lo, hi in [(0, 10), (2, 8), (3, 7), (8, 12), (0, 2)]:
            assert list(m.gaps_iter(lo, hi)) == [
                (e.start, e.end) for e in m.gaps(lo, hi)]

    def test_overlap_len(self):
        m = ExtentMap([(0, 4), (6, 10)])
        assert m.overlap_len(2, 8) == 4
        assert m.overlap_len(4, 6) == 0
        assert m.overlap_len(0, 10) == 8

    def test_empty_map_iterators(self):
        m = ExtentMap()
        assert list(m.iter_tuples()) == []
        assert list(m.overlap_iter(0, 10)) == []
        assert list(m.gaps_iter(3, 9)) == [(3, 9)]
        assert m.overlap_len(0, 10) == 0


# ---------------------------------------------------------------------------
# Property-based: ExtentMap must behave exactly like a set of integers.
# ---------------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_extent_map_matches_reference_set(operations):
    m = ExtentMap()
    ref: set[int] = set()
    for op, a, b in operations:
        lo, hi = min(a, b), max(a, b)
        if op == "add":
            m.add(lo, hi)
            ref.update(range(lo, hi))
        else:
            m.remove(lo, hi)
            ref.difference_update(range(lo, hi))
    covered = {i for ext in m for i in range(ext.start, ext.end)}
    assert covered == ref
    assert m.total() == len(ref)
    # Intervals are sorted, disjoint, non-adjacent (fully merged).
    exts = list(m)
    for left, right in zip(exts, exts[1:]):
        assert left.end < right.start


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(0, 64), st.integers(0, 64))
def test_overlap_and_gaps_partition_query_range(operations, qa, qb):
    lo, hi = min(qa, qb), max(qa, qb)
    m = ExtentMap()
    for op, a, b in operations:
        s, e = min(a, b), max(a, b)
        (m.add if op == "add" else m.remove)(s, e)
    pieces = sorted(m.overlap(lo, hi) + m.gaps(lo, hi))
    # The pieces tile [lo, hi) exactly.
    cursor = lo
    for piece in pieces:
        assert piece.start == cursor
        cursor = piece.end
    assert cursor == hi or (not pieces and lo == hi)


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(0, 64), st.integers(0, 64))
def test_iterator_variants_match_list_api(operations, qa, qb):
    lo, hi = min(qa, qb), max(qa, qb)
    m = ExtentMap()
    for op, a, b in operations:
        s, e = min(a, b), max(a, b)
        (m.add if op == "add" else m.remove)(s, e)
    assert list(m.overlap_iter(lo, hi)) == [
        (e.start, e.end) for e in m.overlap(lo, hi)]
    assert list(m.gaps_iter(lo, hi)) == [
        (e.start, e.end) for e in m.gaps(lo, hi)]
    assert m.overlap_len(lo, hi) == sum(
        e.length for e in m.overlap(lo, hi))
