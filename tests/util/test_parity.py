"""Tests for the XOR parity kernels (word-wise and byte-wise)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.parity import (
    parity_of_stripe,
    xor_bytes,
    xor_bytes_bytewise,
    xor_into,
)


class TestXorBytes:
    def test_empty(self):
        assert xor_bytes([]) == b""

    def test_empty_with_length(self):
        assert xor_bytes([], length=4) == b"\x00" * 4

    def test_single_block_identity(self):
        assert xor_bytes([b"\x01\x02\x03"]) == b"\x01\x02\x03"

    def test_pair(self):
        assert xor_bytes([b"\xff\x0f", b"\x0f\xff"]) == b"\xf0\xf0"

    def test_self_inverse(self):
        a, b = b"hello world", b"parity data"
        p = xor_bytes([a, b])
        assert xor_bytes([p, b]) == a

    def test_unequal_lengths_zero_padded(self):
        assert xor_bytes([b"\xaa\xbb\xcc", b"\xaa"]) == b"\x00\xbb\xcc"

    def test_explicit_length_truncates(self):
        assert xor_bytes([b"\x01\x02\x03"], length=2) == b"\x01\x02"

    def test_accepts_ndarray(self):
        arr = np.frombuffer(b"\x01\x02", dtype=np.uint8)
        assert xor_bytes([arr, b"\x01\x02"]) == b"\x00\x00"

    def test_rejects_non_uint8_ndarray(self):
        with pytest.raises(TypeError):
            xor_bytes([np.zeros(4, dtype=np.float64)])


class TestXorInto:
    def test_in_place(self):
        acc = np.frombuffer(bytearray(b"\x0f\x0f\x0f"), dtype=np.uint8).copy()
        xor_into(acc, b"\xf0\xf0")
        assert acc.tobytes() == b"\xff\xff\x0f"

    def test_operand_too_long(self):
        acc = np.zeros(2, dtype=np.uint8)
        with pytest.raises(ValueError):
            xor_into(acc, b"\x01\x02\x03")


class TestBytewiseKernel:
    def test_matches_wordwise_on_examples(self):
        blocks = [b"abcdef", b"012345", b"\x00\xff" * 3]
        assert xor_bytes_bytewise(blocks) == xor_bytes(blocks)

    def test_unequal_lengths(self):
        blocks = [b"\xaa\xbb\xcc", b"\xaa"]
        assert xor_bytes_bytewise(blocks) == xor_bytes(blocks)


class TestParityOfStripe:
    def test_full_stripe(self):
        unit = 8
        d0, d1 = b"\x01" * 8, b"\x02" * 8
        assert parity_of_stripe([d0, d1], unit) == b"\x03" * 8

    def test_short_tail_block_padded(self):
        unit = 8
        p = parity_of_stripe([b"\xff" * 8, b"\xff" * 3], unit)
        assert p == b"\x00" * 3 + b"\xff" * 5
        assert len(p) == unit

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError):
            parity_of_stripe([b"\x00" * 9], 8)

    def test_reconstruction_identity(self):
        # Fundamental RAID5 property: any lost block equals the XOR of the
        # surviving blocks and the parity.
        unit = 16
        rng = np.random.default_rng(7)
        blocks = [rng.integers(0, 256, unit, dtype=np.uint8).tobytes()
                  for _ in range(4)]
        parity = parity_of_stripe(blocks, unit)
        for lost in range(4):
            survivors = [b for i, b in enumerate(blocks) if i != lost]
            rebuilt = xor_bytes(survivors + [parity], length=unit)
            assert rebuilt == blocks[lost]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.binary(max_size=64), max_size=6))
def test_kernels_agree(blocks):
    assert xor_bytes(blocks) == xor_bytes_bytewise(blocks)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=5),
       st.data())
def test_any_lost_block_recoverable(blocks, data):
    length = max(len(b) for b in blocks)
    parity = xor_bytes(blocks, length=length)
    lost = data.draw(st.integers(0, len(blocks) - 1))
    survivors = [b for i, b in enumerate(blocks) if i != lost]
    rebuilt = xor_bytes(survivors + [parity], length=length)
    # Recovered block equals original zero-padded to stripe length.
    assert rebuilt == blocks[lost] + b"\x00" * (length - len(blocks[lost]))
