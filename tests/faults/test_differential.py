"""Fault-free differential campaign: every scheme vs the flat reference.

The chaos runner's seeded op stream runs with an *empty* fault plan
against all four schemes; every acknowledged byte must read back exactly
as written, and the whole run must be digest-deterministic.  This is the
baseline the faulted campaigns diff against: a failure here is a plain
data-path bug, not a recovery bug.
"""

import pytest

from repro.faults.plan import FaultPlan
from repro.faults.runner import CHAOS_SCHEMES, run_plan

SEEDS = (0, 1, 2)


def empty_plan(seed, scheme):
    return FaultPlan(seed=seed, scheme=scheme, num_servers=5, num_ops=12,
                     note="fault-free differential")


@pytest.mark.parametrize("scheme", CHAOS_SCHEMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_free_streams_match_the_flat_reference(scheme, seed):
    result = run_plan(empty_plan(seed, scheme))
    assert result.ok, result.failure
    assert result.fired == []
    assert result.ops_failed == 0
    # Every op (prefill included) acked and verified byte-for-byte.
    assert result.ops_acked >= 12


@pytest.mark.parametrize("scheme", CHAOS_SCHEMES)
def test_fault_free_runs_are_deterministic(scheme):
    first = run_plan(empty_plan(0, scheme))
    again = run_plan(empty_plan(0, scheme))
    assert first.digest == again.digest
