"""Injector behaviour: triggers fire, hooks act, plans are validated."""

import numpy as np
import pytest

from repro.csar.config import CSARConfig
from repro.csar.system import System
from repro.errors import FaultPlanError, ServerFailed
from repro.faults import injector as inj
from repro.faults.plan import FaultPlan, FaultSpec, Trigger
from repro.storage.payload import Payload

UNIT = 1024


def make_system(plan, scheme="raid1", **over):
    cfg = dict(scheme=scheme, num_servers=5, num_clients=1,
               stripe_unit=UNIT, content_mode=True,
               rpc_timeout=0.25, rpc_retries=2, rpc_jitter_seed=3)
    cfg.update(over)
    inj.install(plan)
    return System(CSARConfig(**cfg))


def plan_of(*faults):
    plan = FaultPlan(seed=0, scheme="raid1", num_servers=5, num_ops=4,
                     faults=list(faults))
    plan.validate()
    return plan


@pytest.fixture(autouse=True)
def _uninstall():
    yield
    inj.uninstall()


def run_write_read(system, name="f", size=4 * UNIT, seed=9, fsync=False):
    client = system.client()
    out = {}

    def driver():
        yield from client.create(name)
        yield from client.write(name, 0, Payload.pattern(size, seed=seed))
        if fsync:
            try:
                yield from client.fsync(name)
            except ServerFailed:
                pass  # a faulted server may reject its flush
        data = yield from client.read(name, 0, size)
        out["data"] = data.to_bytes()

    system.run(driver())
    assert out["data"] == Payload.pattern(size, seed=seed).to_bytes()
    return system


def test_time_trigger_fires_at_the_armed_sim_time():
    system = make_system(plan_of(
        FaultSpec("crash", 3, Trigger("time", 0.001))))
    run_write_read(system)
    fired = system.env.faults.fired
    assert [(k, s) for _t, k, s in fired] == [("crash", 3)]
    assert fired[0][0] == pytest.approx(0.001)
    assert system.iods[3].failed


def test_op_trigger_fires_before_the_named_op():
    system = make_system(plan_of(
        FaultSpec("crash", 2, Trigger("op", 1))))
    client = system.client()

    def driver():
        yield from client.create("f")
        system.env.faults.note_op(0)
        yield from client.write("f", 0, Payload.pattern(UNIT, seed=1))
        assert not system.iods[2].failed
        system.env.faults.note_op(1)
        assert system.iods[2].failed
        yield from client.write("f", 0, Payload.pattern(UNIT, seed=2))

    system.run(driver())


def test_step_trigger_counts_occurrences():
    spec = FaultSpec("crash", 0,
                     Trigger("step", "raid5.rmw.before_writeback", nth=2))
    plan = FaultPlan(seed=0, scheme="raid5", num_servers=5, num_ops=4,
                     faults=[spec])
    plan.validate()
    system = make_system(plan, scheme="raid5")
    client = system.client()

    def driver():
        yield from client.create("f")
        # Two partial-stripe RMWs: the first passes the step untouched,
        # the second fires the crash at its writeback.
        yield from client.write("f", 128, Payload.pattern(256, seed=1))
        assert not system.iods[0].failed
        yield from client.write("f", 128, Payload.pattern(256, seed=2))
        assert system.iods[0].failed

    system.run(driver())


def test_link_drop_times_out_retries_and_recovers():
    system = make_system(plan_of(
        FaultSpec("link_drop", 1, Trigger("time", 0.0),
                  count=1, direction="req")))
    run_write_read(system)
    # The dropped request cost one timeout; the retry delivered it.
    assert system.metrics.get("client.rpc_timeouts") >= 1
    assert not system.iods[1].failed


def test_link_drop_plans_require_rpc_timeouts():
    plan = plan_of(FaultSpec("link_drop", 1, Trigger("time", 0.0),
                             count=1, direction="req"))
    with pytest.raises(FaultPlanError, match="rpc_timeout"):
        make_system(plan, rpc_timeout=None)


def test_link_delay_and_dup_preserve_correctness():
    system = make_system(plan_of(
        FaultSpec("link_delay", 0, Trigger("time", 0.0), count=4,
                  delay=0.01, direction="any"),
        FaultSpec("link_dup", 2, Trigger("time", 0.0), count=4,
                  direction="req")))
    run_write_read(system)
    kinds = {k for _t, k, _s in system.env.faults.fired}
    assert "link_delay" in kinds and "link_dup" in kinds


def test_disk_slow_stretches_io_without_corruption():
    # fsync forces the cached writes down to the (slowed) spindle.
    fast = run_write_read(make_system(plan_of()), fsync=True)
    slow = run_write_read(make_system(plan_of(
        FaultSpec("disk_slow", 0, Trigger("time", 0.0),
                  count=8, factor=16.0))), fsync=True)
    assert slow.env.now > fast.env.now
    assert len(slow.env.faults.fired) > 1  # armed + consumed I/Os


def test_disk_error_crashes_the_owning_server():
    system = make_system(plan_of(
        FaultSpec("disk_error", 1, Trigger("time", 0.0), count=1)))
    # raid1 tolerates the loss; the write lands degraded and reads
    # reconstruct from the mirror.  fsync drives the I/O that faults.
    run_write_read(system, fsync=True)
    assert system.iods[1].failed
    assert ("disk_error", 1) in {(k, s)
                                 for _t, k, s in system.env.faults.fired}


def test_torn_write_persists_a_prefix_and_crashes():
    system = make_system(plan_of(
        FaultSpec("torn_write", 0, Trigger("time", 0.0), frac=0.5)))
    client = system.client()
    size = 4 * UNIT
    out = {}

    def driver():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(size, seed=5))
        data = yield from client.read("f", 0, size)
        out["data"] = data.to_bytes()

    system.run(driver())
    # The write itself survives: raid1 tolerates the crashed server and
    # the read reconstructs every byte from the mirror.
    assert out["data"] == Payload.pattern(size, seed=5).to_bytes()
    assert system.iods[0].failed
    # The victim's own disk holds only a prefix of the torn block.
    local = system.iods[0].fs.files.get("f.data")
    if local is not None:
        got = np.frombuffer(local.read(0, UNIT).to_bytes(), dtype=np.uint8)
        want = np.frombuffer(
            Payload.pattern(size, seed=5).slice(0, UNIT).to_bytes(),
            dtype=np.uint8)
        assert not np.array_equal(got, want)


def test_restart_crash_restarts_but_stays_suspected():
    system = make_system(plan_of(
        FaultSpec("restart_crash", 1, Trigger("time", 0.0005),
                  restart_after=0.01)))
    client = system.client()
    size = 4 * UNIT
    out = {}

    def driver():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(size, seed=7))
        yield system.env.timeout(0.1)  # let the restarter run
        data = yield from client.read("f", 0, size)
        out["data"] = data.to_bytes()

    system.run(driver())
    assert out["data"] == Payload.pattern(size, seed=7).to_bytes()
    iod = system.iods[1]
    assert not iod.failed          # it restarted...
    assert 1 in system.env.faults.restarted
    assert 1 in system.client().suspected  # ...but is quarantined


def test_rebuild_clears_suspicion_after_restart():
    from repro.redundancy.recovery import rebuild_server

    system = make_system(plan_of(
        FaultSpec("restart_crash", 1, Trigger("time", 0.0005),
                  restart_after=0.01)))
    client = system.client()
    size = 4 * UNIT

    def driver():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(size, seed=7))
        yield system.env.timeout(0.1)
        if not system.iods[1].failed:
            system.iods[1].fail()
        yield from rebuild_server(system, 1)
        data = yield from client.read("f", 0, size)
        assert data.to_bytes() == Payload.pattern(size, seed=7).to_bytes()

    system.run(driver())
    assert 1 not in system.client().suspected
    assert not system.iods[1].failed


def test_attach_rejects_plans_for_a_different_cluster_size():
    plan = FaultPlan(seed=0, scheme="raid1", num_servers=4, num_ops=1,
                     faults=[FaultSpec("crash", 0, Trigger("time", 1.0))])
    plan.validate()
    with pytest.raises(FaultPlanError, match="servers"):
        make_system(plan)


def test_install_is_inert_without_a_system():
    assert not inj.installed()
    inj.install(plan_of())
    assert inj.installed()
    inj.uninstall()
    assert not inj.installed()
    # Fault-free systems run identically with no factory installed.
    run_write_read(System(CSARConfig(
        scheme="raid1", num_servers=5, num_clients=1, stripe_unit=UNIT,
        content_mode=True)))
