"""Verify the verifier: a bug class only the fault matrix can see.

:class:`~repro.analysis.seeded_bugs.CompensatingWritebackRaid5` rolls a
failed RMW data write's delta back out of parity.  The corrupted state
is *internally consistent* — parity XORs to the reconstructible data, so
ParitySan, the scrubber, and byte-for-byte reads all stay green — which
is exactly why none of the pre-existing tests can catch it:

* fault-free, the compensation path is never taken (no write fails);
* with a server failed *between* operations (the idiom of every
  pre-existing failure test, e.g. ``tests/redundancy/test_chaos.py``'s
  ``fail`` steps), the victim's **old-data read** fails too, and the
  compensation is gated on "old read succeeded AND writeback failed";

only a crash *inside* the RMW window — after the old reads, before the
writeback — arms the gate, and only step-triggered fault injection can
place a crash there.  The crash matrix does, and the acked write's bytes
come back wrong after recovery.
"""

import numpy as np

from repro.analysis.seeded_bugs import CompensatingWritebackRaid5, inject
from repro.csar.config import CSARConfig
from repro.csar.system import System
from repro.faults.matrix import run_cell
from repro.redundancy.recovery import rebuild_server
from repro.storage.payload import Payload

UNIT = 512


def buggy_scenario(fail_between_ops):
    """The seeded scheme under the *pre-existing* test idioms."""
    cfg = CSARConfig(scheme="raid5", num_servers=5, num_clients=1,
                     stripe_unit=UNIT, content_mode=True)
    system = System(cfg)
    inject(system, CompensatingWritebackRaid5(cfg))
    client = system.client()
    size = 2 * system.layout.group_span
    out = {}

    def driver():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(size, seed=11))
        if fail_between_ops:
            system.fail_server(0)  # between ops: the existing-suite idiom
        yield from client.write("f", 128, Payload.pattern(256, seed=22))
        if fail_between_ops:
            yield from rebuild_server(system, 0)
        data = yield from client.read("f", 0, size)
        out["got"] = np.frombuffer(data.to_bytes(), dtype=np.uint8)

    system.run(driver())
    ref = np.frombuffer(Payload.pattern(size, seed=11).to_bytes(),
                        dtype=np.uint8).copy()
    ref[128:384] = np.frombuffer(Payload.pattern(256, seed=22).to_bytes(),
                                 dtype=np.uint8)
    return np.array_equal(out["got"], ref)


def test_the_bug_is_invisible_fault_free():
    assert buggy_scenario(fail_between_ops=False)


def test_the_bug_is_dormant_under_between_ops_failures():
    # The strongest pre-existing failure idiom cannot arm the gate: the
    # victim's old-data read fails along with its write, so the
    # compensation never runs and every byte verifies.
    assert buggy_scenario(fail_between_ops=True)


def test_the_real_scheme_passes_the_killing_cell():
    cell = run_cell("raid5", "raid5.rmw.before_writeback", 1, 0)
    assert cell.ok, cell.format()


def test_the_crash_matrix_catches_the_bug():
    cell = run_cell("raid5", "raid5.rmw.before_writeback", 1, 0,
                    make_scheme=CompensatingWritebackRaid5)
    assert not cell.ok
    assert "acked byte" in cell.detail


def test_paritysan_is_blind_to_the_corruption():
    # The bug's whole point: the post-recovery state is parity-consistent
    # (the old bytes are what parity implies), so the redundancy
    # sanitizer has nothing to report — only the differential oracle
    # sees the loss.
    from repro.analysis import paritysan

    fresh = not paritysan.installed()
    if fresh:
        paritysan.install()
    try:
        paritysan.drain_reports()
        cell = run_cell("raid5", "raid5.rmw.before_writeback", 1, 0,
                        make_scheme=CompensatingWritebackRaid5)
        reports = paritysan.drain_reports()
    finally:
        if fresh:
            paritysan.uninstall()
    assert not cell.ok          # the oracle catches it...
    assert reports == []        # ...and the sanitizer provably cannot
