"""The chaos campaign: determinism, replay, oracles, plan artifacts."""

import json

import pytest

from repro.analysis.seeded_bugs import CompensatingWritebackRaid5, inject
from repro.faults.plan import FaultPlan, FaultSpec, Trigger, sample_plan
from repro.faults.runner import (CHAOS_SCHEMES, replay, run_campaign,
                                 run_chaos, run_plan, save_failing_plan)


def test_campaign_seeds_survive_their_sampled_faults():
    results = run_campaign(range(4), CHAOS_SCHEMES, num_ops=8)
    assert len(results) == 4 * len(CHAOS_SCHEMES)
    bad = [r for r in results if not r.ok]
    assert bad == [], "\n".join(f"{r.format()}: {r.failure}" for r in bad)


def test_same_seed_same_plan_same_digest():
    for scheme in ("raid5", "hybrid"):
        first = run_chaos(2, scheme)
        again = run_chaos(2, scheme)
        assert first.plan == again.plan
        assert first.fired == again.fired
        assert first.digest == again.digest


def test_saved_plan_replays_to_the_same_outcome(tmp_path):
    result = run_chaos(3, "hybrid")
    path = tmp_path / "plan.json"
    save_failing_plan(result, str(path))
    # The artifact is a schema-versioned plan plus the expected outcome.
    data = json.loads(path.read_text())
    assert data["schema_version"] == 1
    assert data["digest"] == result.digest
    reproduced, again = replay(str(path))
    assert reproduced
    assert again.digest == result.digest


def test_replay_detects_a_diverging_recording(tmp_path):
    result = run_chaos(3, "raid1")
    path = tmp_path / "plan.json"
    save_failing_plan(result, str(path))
    data = json.loads(path.read_text())
    data["digest"] = "0" * 64  # doctored recording
    path.write_text(json.dumps(data))
    reproduced, _again = replay(str(path))
    assert not reproduced


def test_seeded_bug_fails_the_differential_oracle():
    # A mid-RMW crash that the compensating-writeback bug turns into
    # silent data loss: the campaign's oracle must convict it.  Which
    # (occurrence, victim) pair arms the gate depends on the workload's
    # RMW layout, so probe the step's early occurrences; the real
    # scheme must survive every probed plan, the buggy one must fall to
    # at least one — and to the differential oracle specifically, since
    # the corrupted state fools every other check.
    def mk_plan(nth, victim):
        plan = FaultPlan(
            seed=0, scheme="raid5", num_servers=5, num_ops=10,
            note="seeded-bug conviction",
            faults=[FaultSpec("crash", victim,
                              Trigger("step",
                                      "raid5.rmw.before_writeback",
                                      nth=nth))])
        plan.validate()
        return plan

    convicted = None
    for nth in range(2, 6):
        for victim in range(4):
            plan = mk_plan(nth, victim)
            buggy = run_plan(plan, inject=lambda system: inject(
                system, CompensatingWritebackRaid5(system.config)))
            if not buggy.ok:
                convicted = (plan, buggy)
                break
        if convicted:
            break
    assert convicted is not None, \
        "no probed mid-RMW crash convicted the seeded bug"
    plan, buggy = convicted
    assert buggy.failure_kind == "differential", buggy.failure
    clean = run_plan(plan)
    assert clean.ok, clean.failure  # the real scheme survives that plan


def test_failing_campaign_writes_plan_artifacts(tmp_path):
    plan_dir = tmp_path / "plans"
    # No real failures expected; the artifact path is exercised by the
    # seeded-bug conviction above, so here just check the clean sweep
    # leaves the directory unmade.
    results = run_campaign([5], ("raid5",), plan_dir=str(plan_dir))
    assert all(r.ok for r in results)
    assert not plan_dir.exists()


@pytest.mark.parametrize("scheme", CHAOS_SCHEMES)
def test_sampled_plans_attach_cleanly(scheme):
    # Arming must validate: every sampled plan for the campaign config
    # passes attach (server counts, timeout requirements).
    for seed in range(12):
        plan = sample_plan(seed, scheme, 5, 10)
        plan.validate()
        result = run_plan(plan)
        assert result.ok, f"{result.format()}: {result.failure}"
