"""Regression: :meth:`IOD.fail` must not strand in-flight state.

Before the fault harness, ``fail()`` only flipped the flag: requests
already inside a handler ran to completion against a "dead" server, and
parity-lock waiters queued behind a crashed lock holder hung forever.
Now a crash errors out every in-flight handler
(:class:`~repro.errors.ServerFailed` to the waiting client) and clears
the parity-lock table, waking queued waiters.
"""

from repro.csar.config import CSARConfig
from repro.csar.system import System
from repro.errors import ServerFailed
from repro.pvfs import messages as msg
from repro.storage.payload import Payload

UNIT = 1024


def make_system(scheme="raid5"):
    return System(CSARConfig(scheme=scheme, num_servers=5, num_clients=2,
                             stripe_unit=UNIT, content_mode=True))


def test_fail_errors_out_in_flight_requests():
    system = make_system()
    client = system.client()
    outcome = {}

    def writer():
        yield from client.create("f")
        try:
            yield from client.rpc(system.iods[1], msg.WriteReq(
                "f", kind="data", offset=0,
                payload=Payload.pattern(UNIT, seed=1),
                xid=client.next_xid()))
        except ServerFailed as exc:
            outcome["error"] = exc
        else:
            outcome["error"] = None

    def crasher():
        # Land the crash while the write is inside iod1's handler.
        yield system.env.timeout(1e-5)
        system.iods[1].fail()

    system.run(writer(), crasher())
    assert isinstance(outcome["error"], ServerFailed)


def test_fail_releases_parity_lock_queue():
    """A crashed lock holder must not wedge the next writer forever."""
    system = make_system()
    c0, c1 = system.clients
    done = {}

    def setup():
        yield from c0.create("f")
        yield from c0.write("f", 0,
                            Payload.pattern(8 * UNIT, seed=3))

    system.run(setup())
    group = 0
    p_server = system.layout.parity_server(group)
    iod = system.iods[p_server]

    def holder():
        # Take the group lock the way an RMW does, then "crash" while
        # holding it.
        yield from iod.locks.acquire("f", group, xid=1001)
        yield system.env.timeout(1e-4)
        iod.fail()

    def blocked_writer():
        # Queue behind the holder; must be woken with an error (or
        # acquire against the wiped table), never hang.
        yield system.env.timeout(1e-5)
        try:
            yield from c1.write("f", 128, Payload.pattern(256, seed=4))
        except ServerFailed:
            pass
        done["writer"] = True

    # system.run would hang (SimulationError: deadlock) if the queue
    # entry leaked; completing at all is the regression assertion.
    system.run(holder(), blocked_writer())
    assert done.get("writer")


def test_fail_is_idempotent_and_repair_restores_service():
    system = make_system(scheme="raid1")
    client = system.client()

    def driver():
        yield from client.create("f")
        yield from client.write("f", 0, Payload.pattern(UNIT, seed=5))

    system.run(driver())
    iod = system.iods[0]
    iod.fail()
    iod.fail()  # second fail must be a no-op, not a double-interrupt
    assert iod.failed
    iod.repair(wipe=False)
    assert not iod.failed

    def after():
        data = yield from client.read("f", 0, UNIT)
        assert data.to_bytes() == Payload.pattern(UNIT, seed=5).to_bytes()

    system.run(after())
