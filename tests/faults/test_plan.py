"""Fault-plan data model: validation, JSON round-trip, seeded sampling."""

import json

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (FAULT_KINDS, PLAN_SCHEMA_VERSION, STEP_NAMES,
                               FaultPlan, FaultSpec, Trigger, load_plan,
                               sample_plan)


def test_round_trip_preserves_every_field(tmp_path):
    plan = FaultPlan(seed=7, scheme="raid5", num_servers=5, num_ops=12,
                     note="round trip", faults=[
                         FaultSpec("crash", 1, Trigger("time", 0.25)),
                         FaultSpec("restart_crash", 2, Trigger("op", 3),
                                   restart_after=0.1),
                         FaultSpec("link_drop", 0,
                                   Trigger("step",
                                           "raid5.rmw.before_writeback",
                                           nth=2),
                                   count=1, direction="req"),
                         FaultSpec("link_delay", 3, Trigger("time", 1.0),
                                   count=4, delay=0.01, direction="reply"),
                         FaultSpec("disk_slow", 4, Trigger("op", 0),
                                   count=8, factor=4.5),
                         FaultSpec("torn_write", 2, Trigger("op", 5),
                                   frac=0.25),
                     ])
    plan.validate()
    path = tmp_path / "plan.json"
    plan.dump(str(path))
    loaded = load_plan(str(path))
    assert loaded == plan
    assert loaded.to_json() == plan.to_json()


def test_unknown_schema_version_is_rejected():
    data = FaultPlan(seed=0, scheme="raid5", num_servers=5,
                     num_ops=1).to_json()
    data["schema_version"] = PLAN_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        FaultPlan.from_json(data)


def test_unknown_top_level_keys_are_ignored():
    # A saved failing plan carries "failure"/"digest" alongside the plan.
    data = FaultPlan(seed=0, scheme="hybrid", num_servers=5,
                     num_ops=4).to_json()
    data["failure"] = {"kind": "differential"}
    data["digest"] = "abc"
    plan = FaultPlan.from_json(data)
    assert plan.scheme == "hybrid"


@pytest.mark.parametrize("bad, match", [
    (FaultSpec("no-such-kind", 0, Trigger("time", 1.0)), "unknown fault"),
    (FaultSpec("crash", 9, Trigger("time", 1.0)), "9"),
    (FaultSpec("crash", 0, Trigger("step", "no.such.step")),
     "unknown protocol step"),
    (FaultSpec("crash", 0, Trigger("op", -1)), "ordinal"),
    (FaultSpec("restart_crash", 0, Trigger("time", 1.0)), "restart_after"),
    (FaultSpec("link_delay", 0, Trigger("time", 1.0)), "delay"),
    (FaultSpec("disk_slow", 0, Trigger("time", 1.0)), "factor"),
    (FaultSpec("torn_write", 0, Trigger("time", 1.0), frac=1.0), "frac"),
    (FaultSpec("link_dup", 0, Trigger("time", 1.0), direction="up"),
     "direction"),
])
def test_validation_rejects_malformed_specs(bad, match):
    with pytest.raises(FaultPlanError, match=match):
        bad.validate(5)


def test_sampling_is_seed_deterministic():
    for seed in range(20):
        a = sample_plan(seed, "raid5", 5, 10)
        b = sample_plan(seed, "raid5", 5, 10)
        assert a == b
        assert json.dumps(a.to_json(), sort_keys=True) == \
            json.dumps(b.to_json(), sort_keys=True)


def test_sampled_plans_obey_the_single_fault_model():
    for seed in range(40):
        for scheme in ("raid0", "raid1", "raid5", "hybrid"):
            plan = sample_plan(seed, scheme, 5, 10)
            plan.validate()
            # Single-fault tolerance: at most one server is ever lost.
            assert len(plan.crashed_servers()) <= 1
            for spec in plan.faults:
                assert spec.kind in FAULT_KINDS
                if spec.trigger.kind == "step":
                    assert spec.trigger.at in STEP_NAMES
