"""The crash-consistency matrix: every server × every protocol step.

Each cell crashes one server at one named step inside the RAID5
partial-stripe read-modify-write or the Hybrid overflow write, recovers
the cluster, and asserts the durability invariant: acknowledged bytes
survive.  The real schemes must pass every cell.
"""

import pytest

from repro.faults.matrix import MATRIX_STEPS, crash_matrix, run_cell

VICTIMS = tuple(range(5))


@pytest.mark.parametrize("step, nth", MATRIX_STEPS["raid5"])
def test_raid5_survives_a_crash_at_every_step(step, nth):
    for victim in VICTIMS:
        cell = run_cell("raid5", step, nth, victim)
        assert cell.ok, cell.format()


@pytest.mark.parametrize("step, nth", MATRIX_STEPS["hybrid"])
def test_hybrid_survives_a_crash_at_every_step(step, nth):
    for victim in VICTIMS:
        cell = run_cell("hybrid", step, nth, victim)
        assert cell.ok, cell.format()


def test_the_matrix_covers_every_rmw_and_overflow_step():
    raid5_steps = {s for s, _n in MATRIX_STEPS["raid5"]}
    assert {"raid5.rmw.before_parity_read", "raid5.rmw.after_parity_read",
            "raid5.rmw.before_writeback",
            "raid5.rmw.after_writeback"} <= raid5_steps
    hybrid_steps = {s for s, _n in MATRIX_STEPS["hybrid"]}
    assert {"hybrid.overflow.before_write", "hybrid.overflow.after_write",
            "iod.overflow.before_append",
            "iod.overflow.after_append"} <= hybrid_steps


def test_full_matrix_helper_enumerates_all_cells():
    cells = crash_matrix("raid5", victims=(0,))
    assert len(cells) == len(MATRIX_STEPS["raid5"])
    assert all(c.ok for c in cells)
