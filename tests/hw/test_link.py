"""Tests for the flow-level network model."""

import pytest

from repro.hw.link import NIC, transfer
from repro.hw.params import NetworkParams
from repro.metrics import Metrics
from repro.sim import Environment
from repro.units import MBps


@pytest.fixture
def env():
    return Environment()


def make_nic(env, name, bw=100 * MBps, latency=1e-4, per_message=1e-5):
    return NIC(env, name, NetworkParams(bandwidth=bw, latency=latency,
                                        per_message=per_message))


class TestTransfer:
    def test_single_flow_time(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")

        def proc():
            yield env.process(transfer(env, a, b, 10_000_000))
            return env.now

        p = env.process(proc())
        elapsed = env.run(until=p)
        # 10 MB at 100 MB/s = 0.1 s, plus per-message and latency.
        assert elapsed == pytest.approx(0.1 + 1e-5 + 1e-4)

    def test_bottleneck_is_slower_side(self, env):
        fast = make_nic(env, "fast", bw=200 * MBps)
        slow = make_nic(env, "slow", bw=50 * MBps)

        def proc():
            yield env.process(transfer(env, fast, slow, 50_000_000))
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == pytest.approx(1.0, rel=0.01)

    def test_sender_serializes_concurrent_flows(self, env):
        src = make_nic(env, "src")
        dsts = [make_nic(env, f"d{i}") for i in range(4)]
        done = []

        def flow(dst):
            yield env.process(transfer(env, src, dst, 10_000_000))
            done.append(env.now)

        for dst in dsts:
            env.process(flow(dst))
        env.run()
        # 4 x 10 MB through one 100 MB/s NIC: last completes at >= 0.4 s.
        assert max(done) >= 0.4

    def test_receiver_serializes_incast(self, env):
        srcs = [make_nic(env, f"s{i}") for i in range(4)]
        dst = make_nic(env, "dst")
        done = []

        def flow(src):
            yield env.process(transfer(env, src, dst, 10_000_000))
            done.append(env.now)

        for src in srcs:
            env.process(flow(src))
        env.run()
        assert max(done) >= 0.4

    def test_disjoint_pairs_run_in_parallel(self, env):
        pairs = [(make_nic(env, f"a{i}"), make_nic(env, f"b{i}"))
                 for i in range(4)]
        done = []

        def flow(a, b):
            yield env.process(transfer(env, a, b, 10_000_000))
            done.append(env.now)

        for a, b in pairs:
            env.process(flow(a, b))
        env.run()
        # Independent pairs all finish in ~0.1 s.
        assert max(done) == pytest.approx(0.1 + 1e-5 + 1e-4)

    def test_loopback_is_nearly_free(self, env):
        a = make_nic(env, "a")

        def proc():
            yield env.process(transfer(env, a, a, 10_000_000))
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == pytest.approx(1e-5)

    def test_metrics_recorded(self, env):
        metrics = Metrics()
        a, b = make_nic(env, "a"), make_nic(env, "b")

        def proc():
            yield env.process(transfer(env, a, b, 1234, metrics))

        env.process(proc())
        env.run()
        assert metrics.node_tx_bytes["a"] == 1234
        assert metrics.node_rx_bytes["b"] == 1234
        assert metrics.get("net.bytes") == 1234

    def test_negative_size_rejected(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")

        def proc():
            yield env.process(transfer(env, a, b, -1))

        p = env.process(proc())
        with pytest.raises(ValueError):
            env.run(until=p)
