"""Tests for pipelined streaming transfers (wire + per-byte CPU overlap)."""

import pytest

from repro.hw.cpu import Cpu
from repro.hw.link import NIC, stream
from repro.hw.params import CpuParams, NetworkParams
from repro.metrics import Metrics
from repro.sim import Environment
from repro.units import MBps


@pytest.fixture
def env():
    return Environment()


def make_nic(env, name, bw=100 * MBps):
    return NIC(env, name, NetworkParams(bandwidth=bw, latency=1e-5,
                                        per_message=1e-6))


def make_cpu(env, name, byte_rate=20 * MBps):
    return Cpu(env, name, CpuParams(parity_bandwidth=1000 * MBps,
                                    parity_bandwidth_bytewise=100 * MBps,
                                    request_overhead=1e-4,
                                    kernel_module_overhead=1e-3,
                                    byte_rate=byte_rate))


def run_timed(env, gen):
    def wrapper():
        yield from gen
        return env.now

    p = env.process(wrapper())
    return env.run(until=p)


class TestStream:
    def test_slow_cpu_sets_the_rate(self, env):
        # 10 MB over a 100 MB/s wire into a 20 MB/s CPU: ~0.5 s.
        a, b = make_nic(env, "a"), make_nic(env, "b")
        cpu = make_cpu(env, "b", byte_rate=20 * MBps)
        elapsed = run_timed(env, stream(env, a, b, 10_000_000, cpu=cpu))
        assert elapsed == pytest.approx(0.5, rel=0.05)

    def test_fast_cpu_leaves_wire_bound(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")
        cpu = make_cpu(env, "b", byte_rate=1000 * MBps)
        elapsed = run_timed(env, stream(env, a, b, 10_000_000, cpu=cpu))
        assert elapsed == pytest.approx(0.1, rel=0.1)

    def test_src_side_cpu(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")
        cpu = make_cpu(env, "a", byte_rate=20 * MBps)
        elapsed = run_timed(env, stream(env, a, b, 10_000_000, cpu=cpu,
                                        cpu_at="src"))
        assert elapsed == pytest.approx(0.5, rel=0.05)

    def test_bad_cpu_side_rejected(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")
        cpu = make_cpu(env, "b")

        def proc():
            yield from stream(env, a, b, 1000, cpu=cpu, cpu_at="middle")

        p = env.process(proc())
        with pytest.raises(ValueError):
            env.run(until=p)

    def test_no_cpu_falls_back_to_transfer(self, env):
        a, b = make_nic(env, "a"), make_nic(env, "b")
        elapsed = run_timed(env, stream(env, a, b, 10_000_000))
        assert elapsed == pytest.approx(0.1, rel=0.05)

    def test_concurrent_streams_share_cpu_fairly(self, env):
        # Two senders into one 20 MB/s server: aggregate 20, each ~10.
        srcs = [make_nic(env, f"s{i}") for i in range(2)]
        dst = make_nic(env, "d")
        cpu = make_cpu(env, "d", byte_rate=20 * MBps)
        done = []

        def flow(src):
            yield from stream(env, src, dst, 5_000_000, cpu=cpu)
            done.append(env.now)

        for src in srcs:
            env.process(flow(src))
        env.run()
        assert max(done) == pytest.approx(0.5, rel=0.1)

    def test_metrics_counted_once(self, env):
        metrics = Metrics()
        a, b = make_nic(env, "a"), make_nic(env, "b")
        cpu = make_cpu(env, "b")

        def proc():
            yield from stream(env, a, b, 1_000_000, metrics, cpu=cpu)

        env.process(proc())
        env.run()
        assert metrics.node_tx_bytes["a"] == 1_000_000
        assert metrics.node_rx_bytes["b"] == 1_000_000


class TestCpu:
    def test_parity_word_vs_byte(self, env):
        cpu = make_cpu(env, "n")
        t_word = run_timed(env, cpu.compute_parity(10_000_000))
        env2 = Environment()
        cpu2 = make_cpu(env2, "n")
        t_byte = run_timed(env2, cpu2.compute_parity(10_000_000,
                                                     bytewise=True))
        assert t_byte > 5 * t_word

    def test_request_processing_fixed_cost(self, env):
        cpu = make_cpu(env, "n")
        assert run_timed(env, cpu.request_processing()) == pytest.approx(1e-4)

    def test_kernel_module_crossing(self, env):
        cpu = make_cpu(env, "n")
        assert run_timed(env,
                         cpu.kernel_module_crossing()) == pytest.approx(1e-3)

    def test_zero_bytes_free(self, env):
        cpu = make_cpu(env, "n")
        assert run_timed(env, cpu.process_bytes(0)) == 0

    def test_busy_time_accumulates(self, env):
        cpu = make_cpu(env, "n")
        run_timed(env, cpu.process_bytes(20_000_000))
        assert cpu.busy_time == pytest.approx(1.0)
