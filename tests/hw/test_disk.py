"""Tests for the disk model."""

import pytest

from repro.hw.disk import Disk
from repro.hw.params import DiskParams
from repro.metrics import Metrics
from repro.sim import Environment
from repro.units import MBps


@pytest.fixture
def env():
    return Environment()


def make_disk(env, metrics=None, bw=50 * MBps, seek=0.008, per_op=0.0002):
    return Disk(env, "n0", DiskParams(bandwidth=bw, seek=seek, per_op=per_op),
                metrics)


class TestDisk:
    def test_first_op_pays_seek(self, env):
        disk = make_disk(env)

        def proc():
            yield from disk.write("f", 0, 5_000_000)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == pytest.approx(0.008 + 0.0002 + 0.1)
        assert disk.seeks == 1

    def test_sequential_skips_seek(self, env):
        disk = make_disk(env)

        def proc():
            yield from disk.write("f", 0, 1_000_000)
            yield from disk.write("f", 1_000_000, 1_000_000)

        env.process(proc())
        env.run()
        assert disk.seeks == 1
        assert disk.writes == 2

    def test_different_file_breaks_sequentiality(self, env):
        disk = make_disk(env)

        def proc():
            yield from disk.write("f", 0, 1_000_000)
            yield from disk.write("g", 1_000_000, 1_000_000)

        env.process(proc())
        env.run()
        assert disk.seeks == 2

    def test_backward_offset_breaks_sequentiality(self, env):
        disk = make_disk(env)

        def proc():
            yield from disk.write("f", 1_000_000, 1_000_000)
            yield from disk.write("f", 0, 1_000_000)

        env.process(proc())
        env.run()
        assert disk.seeks == 2

    def test_interleaved_read_write_thrashes(self, env):
        # The Fig 6b/7b mechanism: alternating RMW reads and writeback.
        disk = make_disk(env)

        def proc():
            for i in range(4):
                yield from disk.read("old", i * 4096, 4096)
                yield from disk.write("new", i * 4096, 4096)

        env.process(proc())
        env.run()
        assert disk.seeks == 8  # every op repositions

    def test_zero_byte_op_is_free(self, env):
        disk = make_disk(env)

        def proc():
            yield from disk.write("f", 0, 0)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 0
        assert disk.writes == 0

    def test_serialization_between_processes(self, env):
        disk = make_disk(env, seek=0.0, per_op=0.0)
        done = []

        def proc():
            yield from disk.write("f", 0, 25_000_000)
            done.append(env.now)

        env.process(proc())
        env.process(proc())
        env.run()
        assert max(done) == pytest.approx(1.0)  # 2 x 0.5 s serialized

    def test_stats_and_metrics(self, env):
        metrics = Metrics()
        disk = make_disk(env, metrics=metrics)

        def proc():
            yield from disk.write("f", 0, 1000)
            yield from disk.read("f", 0, 500)

        env.process(proc())
        env.run()
        assert disk.bytes_written == 1000
        assert disk.bytes_read == 500
        assert metrics.get("disk.writes") == 1
        assert metrics.get("disk.reads") == 1
        assert metrics.get("disk.bytes_written") == 1000
        assert metrics.get("disk.seeks") == 2
