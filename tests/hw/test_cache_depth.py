"""Deeper page-cache behaviour: eviction pressure, flusher, readahead,
throttle boundaries, and write-buffer interactions."""

import pytest

from repro.hw.cache import PageCache
from repro.hw.disk import Disk
from repro.hw.params import CacheParams, DiskParams
from repro.metrics import Metrics
from repro.sim import Environment
from repro.units import KiB, MBps, MiB
from repro.util.intervals import ExtentMap

BS = 4 * KiB


@pytest.fixture
def env():
    return Environment()


def make_cache(env, metrics=None, capacity=1 * MiB, readahead=0,
               disk_bw=50 * MBps, dirty_limit_fraction=0.4):
    disk = Disk(env, "n0",
                DiskParams(bandwidth=disk_bw, seek=0.005, per_op=0.0001),
                metrics)
    params = CacheParams(capacity=capacity, block_size=BS,
                         dirty_limit_fraction=dirty_limit_fraction,
                         readahead=readahead or BS)
    return PageCache(env, "n0", params, disk, metrics), disk


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


class TestEvictionPressure:
    def test_eviction_prefers_cold_files(self, env):
        cache, disk = make_cache(env, capacity=256 * KiB)
        alloc = ExtentMap([(0, 1 * MiB)])
        run(env, cache.read("cold", 0, 128 * KiB, alloc))
        run(env, cache.read("hot", 0, 128 * KiB, alloc))
        # Touch hot again so "cold" is the LRU file, then overflow.
        run(env, cache.read("hot", 0, 128 * KiB, alloc))
        run(env, cache.read("new", 0, 128 * KiB, alloc))
        assert not cache.is_cached("cold", 0, BS)
        assert cache.is_cached("hot", 0, 128 * KiB)

    def test_dirty_data_survives_eviction(self, env):
        cache, disk = make_cache(env, capacity=128 * KiB)
        run(env, cache.write("d", 0, 64 * KiB, ExtentMap()))
        alloc = ExtentMap([(0, 4 * MiB)])
        for i in range(8):
            run(env, cache.read("filler", i * 128 * KiB,
                                (i + 1) * 128 * KiB, alloc))
        # The dirty bytes were either still dirty or written back — never
        # silently dropped.
        flushed = disk.bytes_written
        assert cache.dirty_bytes + flushed >= 64 * KiB

    def test_usage_never_exceeds_capacity_by_much(self, env):
        cache, _ = make_cache(env, capacity=256 * KiB)
        alloc = ExtentMap([(0, 8 * MiB)])
        for i in range(16):
            run(env, cache.read("f", i * 256 * KiB, (i + 1) * 256 * KiB,
                                alloc))
            assert cache.usage <= 256 * KiB + BS


class TestThrottleBoundary:
    def test_writes_below_limit_never_throttle(self, env):
        metrics = Metrics()
        cache, _ = make_cache(env, metrics, capacity=1 * MiB,
                              dirty_limit_fraction=0.5)
        run(env, cache.write("f", 0, 400 * KiB, ExtentMap()))
        assert metrics.get("cache.throttle_time") == 0

    def test_crossing_limit_throttles_down_to_limit(self, env):
        metrics = Metrics()
        cache, _ = make_cache(env, metrics, capacity=1 * MiB,
                              dirty_limit_fraction=0.5)
        run(env, cache.write("f", 0, 900 * KiB, ExtentMap()))
        assert metrics.get("cache.throttle_time") > 0
        assert cache.dirty_bytes <= cache.params.dirty_limit


class TestReadahead:
    def test_readahead_amortizes_sequential_reads(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics, readahead=64 * KiB)
        alloc = ExtentMap([(0, 1 * MiB)])
        for i in range(16):
            run(env, cache.read("f", i * BS, (i + 1) * BS, alloc))
        # One 64 KiB window covered all 16 block reads.
        assert disk.reads == 1

    def test_readahead_never_reads_past_allocation(self, env):
        cache, disk = make_cache(env, readahead=1 * MiB)
        alloc = ExtentMap([(0, 8 * KiB)])
        run(env, cache.read("f", 0, 4 * KiB, alloc))
        assert disk.bytes_read == 8 * KiB


class TestFlusherLifecycle:
    def test_start_flusher_idempotent(self, env):
        cache, _ = make_cache(env)
        cache.start_flusher()
        first = cache._flusher_proc
        cache.start_flusher()
        assert cache._flusher_proc is first

    def test_flusher_leaves_small_dirty_sets_alone(self, env):
        cache, disk = make_cache(env, capacity=1 * MiB)
        cache.start_flusher()
        run(env, cache.write("f", 0, 32 * KiB, ExtentMap()))  # < background
        env.run(until=env.now + 5)
        assert disk.bytes_written == 0  # below the background limit

    def test_flusher_writes_back_in_file_order(self, env):
        # Elevator-ish behaviour: one file's extents flush in ascending
        # offset order (sequential disk pattern).
        cache, disk = make_cache(env, capacity=64 * MiB)
        run(env, cache.write("f", 0, 8 * MiB, ExtentMap()))
        run(env, cache.fsync("f"))
        # All writeback was sequential after the first positioning.
        assert disk.seeks == 1


class TestConcurrentWriteback:
    def test_fsync_and_flusher_never_double_write(self, env):
        cache, disk = make_cache(env, capacity=64 * MiB)
        cache.start_flusher()
        run(env, cache.write("f", 0, 16 * MiB, ExtentMap()))

        def sync1():
            yield from cache.fsync("f")

        def sync2():
            yield from cache.fsync("f")

        p1, p2 = env.process(sync1()), env.process(sync2())
        env.run(until=env.all_of([p1, p2]))
        assert disk.bytes_written == 16 * MiB
        assert cache.dirty_bytes == 0
