"""Tests for the page-cache model (the Section 5.2 / Fig 7 mechanisms)."""

import pytest

from repro.hw.cache import PageCache
from repro.hw.disk import Disk
from repro.hw.params import CacheParams, DiskParams
from repro.metrics import Metrics
from repro.sim import Environment
from repro.units import KiB, MBps, MiB
from repro.util.intervals import ExtentMap

BS = 4 * KiB


@pytest.fixture
def env():
    return Environment()


def make_cache(env, metrics=None, capacity=1 * MiB, block_size=BS,
               disk_bw=50 * MBps):
    disk = Disk(env, "n0",
                DiskParams(bandwidth=disk_bw, seek=0.005, per_op=0.0001),
                metrics)
    cache = PageCache(env, "n0",
                      CacheParams(capacity=capacity, block_size=block_size),
                      disk, metrics)
    return cache, disk


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


class TestReadPath:
    def test_sparse_read_costs_nothing(self, env):
        cache, disk = make_cache(env)
        run(env, cache.read("f", 0, 64 * KiB, ExtentMap()))
        assert disk.reads == 0
        assert env.now == 0

    def test_cold_read_hits_disk(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 64 * KiB)])
        run(env, cache.read("f", 0, 64 * KiB, allocated))
        assert disk.reads == 1
        assert metrics.get("cache.miss_bytes") == 64 * KiB

    def test_warm_read_is_free(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 64 * KiB)])
        run(env, cache.read("f", 0, 64 * KiB, allocated))
        t_cold = env.now
        run(env, cache.read("f", 0, 64 * KiB, allocated))
        assert env.now == t_cold
        assert disk.reads == 1
        assert metrics.get("cache.hit_bytes") == 64 * KiB

    def test_partial_hit_reads_only_gap(self, env):
        cache, disk = make_cache(env)
        allocated = ExtentMap([(0, 128 * KiB)])
        run(env, cache.read("f", 0, 64 * KiB, allocated))
        run(env, cache.read("f", 0, 128 * KiB, allocated))
        assert disk.bytes_read == 128 * KiB  # no double read

    def test_read_extends_to_readahead_window(self, env):
        cache, disk = make_cache(env)
        allocated = ExtentMap([(0, 1 * MiB)])
        run(env, cache.read("f", 100, 200, allocated))
        # Linux-2.4-style readahead: a tiny cold read pulls a full window.
        assert disk.bytes_read == cache.params.readahead

    def test_read_clipped_to_allocation(self, env):
        cache, disk = make_cache(env)
        allocated = ExtentMap([(0, 8 * KiB)])
        run(env, cache.read("f", 100, 200, allocated))
        assert disk.bytes_read == 8 * KiB


class TestWritePath:
    def test_aligned_write_no_penalty(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 1 * MiB)])  # preexisting file
        run(env, cache.write("f", 0, 64 * KiB, allocated))
        assert metrics.get("cache.partial_block_reads") == 0
        assert disk.reads == 0

    def test_unaligned_write_to_existing_uncached_file_reads_blocks(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 1 * MiB)])
        # Both edges mid-block: two penalty reads.
        run(env, cache.write("f", 100, 64 * KiB + 200, allocated))
        assert metrics.get("cache.partial_block_reads") == 2
        assert disk.reads == 2

    def test_unaligned_write_to_new_file_no_penalty(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        run(env, cache.write("f", 100, 64 * KiB + 200, ExtentMap()))
        assert metrics.get("cache.partial_block_reads") == 0

    def test_unaligned_write_to_cached_file_no_penalty(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 1 * MiB)])
        run(env, cache.read("f", 0, 128 * KiB, allocated))  # warm it
        run(env, cache.write("f", 100, 64 * KiB, allocated))
        assert metrics.get("cache.partial_block_reads") == 0

    def test_chunked_arrival_multiplies_penalty(self, env):
        # Section 5.2: without write buffering, every unaligned chunk
        # boundary forces a block read on a preexisting uncached file.
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 4 * MiB)])
        start = 100  # unaligned start
        end = start + 256 * KiB
        cuts = list(range(start + 64 * KiB, end, 64 * KiB))
        run(env, cache.write("f", start, end, allocated, cut_points=cuts))
        # 4 chunks -> penalty at start, 3 interior cuts and the end.
        assert metrics.get("cache.partial_block_reads") == 5

    def test_buffered_arrival_bounded_penalty(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics)
        allocated = ExtentMap([(0, 4 * MiB)])
        run(env, cache.write("f", 100, 100 + 256 * KiB, allocated))
        assert metrics.get("cache.partial_block_reads") == 2

    def test_write_marks_dirty(self, env):
        cache, disk = make_cache(env)
        run(env, cache.write("f", 0, 64 * KiB, ExtentMap()))
        assert cache.dirty_bytes == 64 * KiB
        assert disk.writes == 0  # write-behind


class TestWritebackAndThrottle:
    def test_fsync_flushes_everything(self, env):
        cache, disk = make_cache(env)
        run(env, cache.write("f", 0, 256 * KiB, ExtentMap()))
        run(env, cache.fsync("f"))
        assert cache.dirty_bytes == 0
        assert disk.bytes_written == 256 * KiB

    def test_fsync_unknown_file_is_noop(self, env):
        cache, disk = make_cache(env)
        run(env, cache.fsync("nope"))
        assert disk.writes == 0

    def test_dirty_limit_throttles_writer(self, env):
        metrics = Metrics()
        cache, disk = make_cache(env, metrics, capacity=1 * MiB)
        # dirty limit = 40% of 1 MiB; write 2 MiB total.
        alloc = ExtentMap()
        for i in range(8):
            run(env, cache.write("f", i * 256 * KiB, (i + 1) * 256 * KiB,
                                 alloc))
        assert metrics.get("cache.throttle_time") > 0
        assert cache.dirty_bytes <= cache.params.dirty_limit

    def test_background_flusher_drains_dirty(self, env):
        cache, disk = make_cache(env, capacity=64 * MiB)
        cache.start_flusher()
        run(env, cache.write("f", 0, 32 * MiB, ExtentMap()))
        env.run(until=env.now + 10)
        assert cache.dirty_bytes <= cache.params.background_limit
        assert disk.bytes_written >= 32 * MiB - cache.params.background_limit

    def test_eviction_keeps_usage_bounded(self, env):
        cache, disk = make_cache(env, capacity=1 * MiB)
        allocated = ExtentMap([(0, 16 * MiB)])
        for i in range(16):
            run(env, cache.read("f", i * MiB, (i + 1) * MiB, allocated))
        assert cache.usage <= 1 * MiB

    def test_drop_syncs_then_forgets(self, env):
        cache, disk = make_cache(env)
        allocated = ExtentMap([(0, 1 * MiB)])
        run(env, cache.write("f", 0, 256 * KiB, allocated))
        run(env, cache.drop())
        assert cache.usage == 0
        assert cache.dirty_bytes == 0
        assert disk.bytes_written == 256 * KiB
        # Next read is cold again.
        reads_before = disk.reads
        run(env, cache.read("f", 0, 64 * KiB, allocated))
        assert disk.reads > reads_before


class TestCacheStateQueries:
    def test_is_cached(self, env):
        cache, _ = make_cache(env)
        run(env, cache.write("f", 0, 8 * KiB, ExtentMap()))
        assert cache.is_cached("f", 0, 8 * KiB)
        assert not cache.is_cached("f", 0, 16 * KiB)
        assert not cache.is_cached("g", 0, 1)

    def test_cached_extents_copy(self, env):
        cache, _ = make_cache(env)
        run(env, cache.write("f", 0, 4 * KiB, ExtentMap()))
        ext = cache.cached_extents("f")
        ext.clear()
        assert cache.is_cached("f", 0, 4 * KiB)
