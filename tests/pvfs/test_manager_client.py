"""Tests for the metadata manager and client-library plumbing."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ProtocolError, ReproError
from repro.pvfs import messages as msg
from repro.units import KiB


def make_system(**kw):
    kw.setdefault("scheme", "raid1")
    kw.setdefault("stripe_unit", 16 * KiB)
    kw.setdefault("content_mode", True)
    return System(CSARConfig(**kw))


class TestManager:
    def test_create_returns_meta_with_layout(self):
        system = make_system()
        client = system.client()

        def work():
            meta = yield from client.create("f")
            return meta

        meta = system.run(work())
        assert meta.name == "f"
        assert meta.layout is system.layout
        assert meta.scheme == "raid1"
        assert meta.size == 0

    def test_manager_rejects_unknown_request(self):
        system = make_system()
        client = system.client()

        class Bogus:
            def wire_size(self):
                return 64

            def reply_size(self):
                return 64

        def work():
            with pytest.raises(ProtocolError):
                yield from client.rpc(system.manager, Bogus())

        system.run(work())

    def test_manager_not_on_data_path(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(64 * KiB))

        system.run(work())
        # Only the open/create round trips touched the manager.
        assert system.metrics.node_tx_bytes.get("mgr", 0) <= 2 * 128


class TestClientPlumbing:
    def test_xids_unique_per_client(self):
        system = make_system(num_clients=2)
        a, b = system.client(0), system.client(1)
        xids = {a.next_xid() for _ in range(100)}
        xids |= {b.next_xid() for _ in range(100)}
        assert len(xids) == 200

    def test_try_parallel_collects_mixed_outcomes(self):
        system = make_system()
        client = system.client()

        def ok():
            yield system.env.timeout(1)
            return "fine"

        def bad():
            yield system.env.timeout(1)
            raise ReproError("nope")

        def work():
            outcomes = yield from client.try_parallel([ok(), bad(), ok()])
            return outcomes

        outcomes = system.run(work())
        assert outcomes[0] == ("fine", None)
        assert outcomes[2] == ("fine", None)
        assert isinstance(outcomes[1][1], ReproError)

    def test_parallel_fails_fast(self):
        system = make_system()
        client = system.client()

        def bad():
            yield system.env.timeout(1)
            raise ValueError("boom")

        def work():
            with pytest.raises(ValueError):
                yield from client.parallel([bad()])

        system.run(work())

    def test_metrics_count_client_io(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(10_000))
            yield from client.read("f", 0, 5_000)

        system.run(work())
        assert system.metrics.get("client.bytes_written") == 10_000
        assert system.metrics.get("client.bytes_read") == 5_000

    def test_kernel_module_adds_latency(self):
        fast = make_system()
        slow = make_system()
        slow.client(0).via_kernel_module = True

        def work(system):
            client = system.client()
            yield from client.create("f")
            for i in range(10):
                yield from client.write("f", i * 1024, Payload.zeros(1024))

        t_fast, _ = fast.timed(work(fast))
        t_slow, _ = slow.timed(work(slow))
        assert t_slow > t_fast

    def test_rpc_to_failed_server_raises(self):
        from repro.errors import ServerFailed

        system = make_system()
        system.fail_server(0)
        client = system.client()

        def work():
            with pytest.raises(ServerFailed):
                yield from client.rpc(system.iods[0],
                                      msg.ReadReq("f", offset=0, length=1))

        system.run(work())

    def test_fsync_reaches_every_server(self):
        system = make_system()
        client = system.client()

        def work():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.zeros(96 * KiB))
            yield from client.fsync("f")

        system.run(work())
        for iod in system.iods:
            assert iod.node.cache.dirty_bytes == 0
