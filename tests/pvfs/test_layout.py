"""Tests for striping and parity-group geometry (encodes Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pvfs.layout import StripeLayout

UNIT = 64


class TestStriping:
    def test_round_robin_servers(self):
        lay = StripeLayout(UNIT, 3)
        assert [lay.server_of_block(b) for b in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_local_offsets_pack_densely(self):
        lay = StripeLayout(UNIT, 3)
        assert lay.local_offset_of_block(0) == 0
        assert lay.local_offset_of_block(3) == UNIT
        assert lay.local_offset_of_block(7) == 2 * UNIT

    def test_logical_of_local_inverse(self):
        lay = StripeLayout(UNIT, 5)
        for logical in [0, 1, UNIT - 1, UNIT, 7 * UNIT + 13, 29 * UNIT]:
            block = lay.block_of(logical)
            server = lay.server_of_block(block)
            local = lay.local_offset_of_block(block) + logical % UNIT
            assert lay.logical_of_local(server, local) == logical

    def test_pieces_cover_range_exactly(self):
        lay = StripeLayout(UNIT, 4)
        pieces = lay.pieces(100, 500)
        assert sum(p.length for p in pieces) == 500
        assert pieces[0].logical_offset == 100
        cursor = 100
        for p in pieces:
            assert p.logical_offset == cursor
            cursor += p.length

    def test_single_server_all_local(self):
        lay = StripeLayout(UNIT, 1)
        ranges = lay.map_range(0, 10 * UNIT)
        assert len(ranges) == 1
        assert ranges[0].server == 0
        assert ranges[0].local_start == 0
        assert ranges[0].local_end == 10 * UNIT

    def test_map_range_one_contiguous_share_per_server(self):
        lay = StripeLayout(UNIT, 4)
        ranges = lay.map_range(UNIT // 2, 10 * UNIT)
        assert len(ranges) == 4
        total = sum(r.length for r in ranges)
        assert total == 10 * UNIT
        for r in ranges:
            assert r.length == sum(p.length for p in r.pieces)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            StripeLayout(0, 3)
        with pytest.raises(ConfigError):
            StripeLayout(UNIT, 0)


class TestParityGeometry:
    def test_figure2_placement(self):
        # Figure 2: 3 servers; parity of D0 (srv0) and D1 (srv1) sits on
        # server 2, as the first block of its redundancy file.
        lay = StripeLayout(UNIT, 3)
        assert list(lay.blocks_of_group(0)) == [0, 1]
        assert lay.parity_server(0) == 2
        assert lay.parity_local_offset(0) == 0
        # Rotation: next groups' parity on servers 1, 0, then 2 again.
        assert lay.parity_server(1) == 1
        assert lay.parity_server(2) == 0
        assert lay.parity_server(3) == 2
        assert lay.parity_local_offset(3) == UNIT

    def test_parity_server_holds_no_group_data(self):
        for n in range(2, 9):
            lay = StripeLayout(UNIT, n)
            for g in range(40):
                data_servers = {lay.server_of_block(b)
                                for b in lay.blocks_of_group(g)}
                assert len(data_servers) == n - 1
                assert lay.parity_server(g) not in data_servers

    def test_parity_blocks_pack_densely_per_server(self):
        lay = StripeLayout(UNIT, 5)
        per_server: dict[int, list[int]] = {}
        for g in range(50):
            per_server.setdefault(lay.parity_server(g), []).append(
                lay.parity_local_offset(g))
        for offsets in per_server.values():
            assert offsets == [i * UNIT for i in range(len(offsets))]

    def test_six_servers_five_data_blocks(self):
        # Section 5.1: "there are 5 data blocks in one RAID5 stripe".
        lay = StripeLayout(UNIT, 6)
        assert lay.group_width == 5
        assert lay.group_span == 5 * UNIT

    def test_group_width_needs_two_servers(self):
        with pytest.raises(ConfigError):
            _ = StripeLayout(UNIT, 1).group_width

    def test_split_by_groups_aligned(self):
        lay = StripeLayout(UNIT, 3)  # span = 128
        head, full, tail = lay.split_by_groups(0, 4 * lay.group_span)
        assert head == (0, 0)
        assert full == (0, 4 * lay.group_span)
        assert tail == (4 * lay.group_span, 4 * lay.group_span)

    def test_split_by_groups_unaligned(self):
        lay = StripeLayout(UNIT, 3)
        span = lay.group_span
        start = span // 2
        end = 3 * span + span // 4
        head, full, tail = lay.split_by_groups(start, end - start)
        assert head == (start, span)
        assert full == (span, 3 * span)
        assert tail == (3 * span, end)

    def test_split_by_groups_all_partial(self):
        lay = StripeLayout(UNIT, 3)
        span = lay.group_span
        head, full, tail = lay.split_by_groups(10, span // 2)
        assert head == (10, 10 + span // 2)
        assert full[0] == full[1]
        assert tail[0] == tail[1]

    def test_split_spanning_boundary_without_full_group(self):
        # Crosses one boundary but covers no complete group: the paper's
        # "at most 2 partial stripes" case — head and tail, no full part.
        lay = StripeLayout(UNIT, 3)
        span = lay.group_span
        head, full, tail = lay.split_by_groups(span - 10, 20)
        assert head == (span - 10, span)
        assert full[0] == full[1]
        assert tail == (span, span + 10)


@settings(max_examples=200, deadline=None)
@given(st.integers(1, 8), st.integers(1, 128), st.integers(0, 4096),
       st.integers(0, 2048))
def test_map_range_partitions_bytes(n, unit, offset, length):
    lay = StripeLayout(unit, n)
    ranges = lay.map_range(offset, length)
    assert sum(r.length for r in ranges) == length
    logical_cover = sorted(
        (p.logical_offset, p.logical_offset + p.length)
        for r in ranges for p in r.pieces)
    cursor = offset
    for lo, hi in logical_cover:
        assert lo == cursor
        cursor = hi
    assert cursor == offset + length or length == 0


@settings(max_examples=200, deadline=None)
@given(st.integers(2, 8), st.integers(1, 64), st.integers(0, 4096),
       st.integers(1, 2048))
def test_split_by_groups_partitions(n, unit, offset, length):
    lay = StripeLayout(unit, n)
    head, full, tail = lay.split_by_groups(offset, length)
    assert head[0] == offset
    assert head[1] <= full[0] or full[0] == full[1]
    assert tail[1] == offset + length
    # Reassemble exactly.
    parts = [p for p in (head, full, tail) if p[1] > p[0]]
    cursor = offset
    for lo, hi in parts:
        assert lo == cursor
        cursor = hi
    assert cursor == offset + length
    # Full part is group-aligned.
    if full[1] > full[0]:
        assert full[0] % lay.group_span == 0
        assert full[1] % lay.group_span == 0
    # Head and tail each stay within one parity group.
    for lo, hi in (head, tail):
        if hi > lo:
            assert lay.group_of(lo) == lay.group_of(hi - 1)
