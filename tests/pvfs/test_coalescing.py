"""RPC coalescing and open-pipelining: semantics must not change.

Coalescing merges adjacent same-kind request fragments per server into
one vectored message — a wire-format optimisation.  Every byte of
server-side state (block files, extents, overflow tables) must be
identical with it on or off; only the message/header accounting may
differ.  Open-pipelining overlaps ``open()`` with the first read RPCs;
a failed open must leave no trace on any server.
"""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import FileNotFound
from repro.units import KiB

UNIT = 4 * KiB


def make_system(**kw):
    kw.setdefault("scheme", "raid5")
    kw.setdefault("num_servers", 4)
    kw.setdefault("stripe_unit", UNIT)
    kw.setdefault("content_mode", True)
    kw.setdefault("num_clients", 2)
    return System(CSARConfig(**kw))


def run_workload(system):
    """A deterministic mixed write/read workload on one file."""
    client = system.client()

    def work():
        yield from client.create("f")
        # Two full groups (3 data units per group at n=4).
        yield from client.write("f", 0, Payload.pattern(6 * UNIT, seed=1))
        # Unaligned partial overwrite (RMW on raid5, overflow on hybrid).
        yield from client.write("f", UNIT // 2,
                                Payload.pattern(UNIT, seed=2))
        # Append past the end, then rewrite the tail.
        yield from client.write("f", 6 * UNIT,
                                Payload.pattern(UNIT // 4, seed=3))
        yield from client.write("f", 5 * UNIT + 100,
                                Payload.pattern(300, seed=4))
        return (yield from client.read("f", 0, 6 * UNIT + UNIT // 4))

    data = system.run(work())
    system.sync_all()
    return data


def expected_bytes():
    ref = bytearray(6 * UNIT + UNIT // 4)
    for offset, payload in (
            (0, Payload.pattern(6 * UNIT, seed=1)),
            (UNIT // 2, Payload.pattern(UNIT, seed=2)),
            (6 * UNIT, Payload.pattern(UNIT // 4, seed=3)),
            (5 * UNIT + 100, Payload.pattern(300, seed=4))):
        ref[offset: offset + payload.length] = payload.to_bytes()
    return bytes(ref)


def server_state(system):
    """Every byte and extent of every local file on every server."""
    state = []
    for iod in system.iods:
        files = {}
        for name, f in sorted(iod.fs.files.items()):
            files[name] = (f.size,
                           tuple(f.allocated.overlap_iter(0, f.size)),
                           f.read(0, f.size).to_bytes())
        state.append(files)
    return state


class TestCoalescingEquivalence:
    @pytest.mark.parametrize("scheme", ["raid5", "hybrid", "raid1"])
    def test_server_state_bit_identical(self, scheme):
        on = make_system(scheme=scheme, coalescing=True)
        off = make_system(scheme=scheme, coalescing=False)
        data_on = run_workload(on)
        data_off = run_workload(off)
        assert data_on.to_bytes() == expected_bytes()
        assert data_off.to_bytes() == expected_bytes()
        assert server_state(on) == server_state(off)

    def test_degraded_read_identical_and_coalesced(self):
        on = make_system(coalescing=True)
        off = make_system(coalescing=False)
        for system in (on, off):
            run_workload(system)
            system.fail_server(1)

        def reader(system):
            def work():
                return (yield from system.client().read(
                    "f", 0, 6 * UNIT + UNIT // 4))
            return system.run(work()).to_bytes()

        assert reader(on) == expected_bytes()
        assert reader(off) == expected_bytes()
        # The multi-group recovery read actually merged fragments...
        assert on.metrics.get("client.coalesced_fragments") > 0
        assert off.metrics.get("client.coalesced_fragments") == 0
        # ...and the saved headers showed up on the wire.
        tx_on = sum(on.metrics.node_tx_bytes.values())
        tx_off = sum(off.metrics.node_tx_bytes.values())
        assert tx_on < tx_off

    def test_single_fragment_requests_never_merge(self):
        system = make_system(coalescing=True)

        def work():
            client = system.client()
            yield from client.create("f")
            # One full stripe: exactly one data + one parity message per
            # server — nothing adjacent to merge.
            yield from client.write("f", 0, Payload.pattern(3 * UNIT, seed=7))

        system.run(work())
        assert system.metrics.get("client.coalesced_fragments") == 0


class TestOpenPipelining:
    def test_fresh_client_read_returns_correct_bytes(self):
        system = make_system()
        run_workload(system)
        # Client 1 never opened "f": its read speculates layout-mapped
        # fetches while the open() round-trips in parallel.
        fresh = system.client(1)

        def work():
            return (yield from fresh.read("f", 100, 2 * UNIT))

        data = system.run(work())
        assert data.to_bytes() == expected_bytes()[100: 100 + 2 * UNIT]

    def test_failed_open_leaves_no_server_state(self):
        system = make_system()

        def work():
            with pytest.raises(FileNotFound):
                yield from system.client().read("nope", 0, UNIT)

        system.run(work())
        for iod in system.iods:
            assert iod.fs.files == {}
            assert "nope" not in iod.overflow

    def test_fresh_client_write_opens_first(self):
        system = make_system()
        run_workload(system)
        fresh = system.client(1)

        def work():
            yield from fresh.write("f", 0, Payload.pattern(UNIT, seed=9))
            return (yield from fresh.read("f", 0, UNIT))

        data = system.run(work())
        assert data.to_bytes() == Payload.pattern(UNIT, seed=9).to_bytes()
