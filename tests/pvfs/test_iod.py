"""Protocol-level tests of the I/O daemon."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ProtocolError, ServerFailed
from repro.pvfs import messages as msg
from repro.units import KiB

UNIT = 16 * KiB


def make_system(**kw):
    kw.setdefault("scheme", "hybrid")
    kw.setdefault("stripe_unit", UNIT)
    kw.setdefault("content_mode", True)
    return System(CSARConfig(**kw))


def rpc(system, iod, request):
    client = system.client()

    def work():
        response = yield from client.rpc(iod, request)
        return response

    return system.run(work())


class TestReadWrite:
    def test_write_then_read(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=64,
                                      payload=Payload.from_bytes(b"abc")))
        response = rpc(system, iod, msg.ReadReq("f", kind="data",
                                                offset=64, length=3))
        assert response.payload.to_bytes() == b"abc"

    def test_read_unwritten_returns_zeros(self):
        system = make_system()
        response = rpc(system, system.iods[2],
                       msg.ReadReq("f", kind="data", offset=0, length=4))
        assert response.payload.to_bytes() == b"\x00" * 4

    def test_kinds_address_separate_files(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"DD")))
        rpc(system, iod, msg.WriteReq("f", kind="red", offset=0,
                                      payload=Payload.from_bytes(b"RR")))
        data = rpc(system, iod, msg.ReadReq("f", kind="data", offset=0,
                                            length=2))
        red = rpc(system, iod, msg.ReadReq("f", kind="red", offset=0,
                                           length=2))
        assert data.payload.to_bytes() == b"DD"
        assert red.payload.to_bytes() == b"RR"

    def test_unknown_kind_rejected(self):
        system = make_system()
        with pytest.raises(ProtocolError):
            rpc(system, system.iods[0],
                msg.ReadReq("f", kind="junk", offset=0, length=1))

    def test_unknown_request_type_rejected(self):
        system = make_system()

        class Bogus(msg.Request):
            pass

        with pytest.raises(ProtocolError):
            rpc(system, system.iods[0], Bogus("f"))


class TestOverflowProtocol:
    def test_overflow_write_resolves_on_data_read(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"old!")))
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(1, 3)], payload=Payload.from_bytes(b"NE")))
        response = rpc(system, iod, msg.ReadReq("f", kind="data",
                                                offset=0, length=4))
        assert response.payload.to_bytes() == b"oNE!"
        assert response.overflow_bytes == 2

    def test_inplace_read_bypasses_overflow(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"old!")))
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(0, 4)], payload=Payload.from_bytes(b"NEW!")))
        response = rpc(system, iod, msg.ReadReq("f", kind="inplace",
                                                offset=0, length=4))
        assert response.payload.to_bytes() == b"old!"

    def test_mismatched_overflow_payload_rejected(self):
        system = make_system()
        with pytest.raises(ProtocolError):
            rpc(system, system.iods[0], msg.OverflowWriteReq(
                "f", ranges=[(0, 10)], payload=Payload.from_bytes(b"xy")))

    def test_invalidate_flag_supersedes_overflow(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(0, 4)], payload=Payload.from_bytes(b"OVFL")))
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"base"),
                                      invalidate=True))
        response = rpc(system, iod, msg.ReadReq("f", kind="data",
                                                offset=0, length=4))
        assert response.payload.to_bytes() == b"base"

    def test_mirror_table_separate_per_origin(self):
        system = make_system()
        iod = system.iods[1]
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(0, 2)], payload=Payload.from_bytes(b"AA"),
            mirror=True, origin=0))
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(0, 2)], payload=Payload.from_bytes(b"BB"),
            mirror=True, origin=5))
        a = rpc(system, iod, msg.MirrorResolveReq("f", origin=0, offset=0,
                                                  length=2))
        b = rpc(system, iod, msg.MirrorResolveReq("f", origin=5, offset=0,
                                                  length=2))
        assert a.payload.to_bytes() == b"AA"
        assert b.payload.to_bytes() == b"BB"
        assert a.ranges == ((0, 2),)

    def test_mirror_resolve_without_table_returns_nothing(self):
        system = make_system()
        response = rpc(system, system.iods[3],
                       msg.MirrorResolveReq("f", origin=2, offset=0,
                                            length=8))
        assert response.ranges == ()


class TestParityProtocol:
    def test_parity_read_locks_until_parity_write(self):
        system = make_system(scheme="raid5")
        iod = system.iods[0]
        rpc(system, iod, msg.ParityReadReq("f", group=5, local_offset=0,
                                           intra=(0, 8), xid=1))
        assert iod.locks.is_locked("f", 5)
        rpc(system, iod, msg.ParityWriteReq(
            "f", group=5, local_offset=0, intra=(0, 8),
            payload=Payload.zeros(8), unlock=True, xid=1))
        assert not iod.locks.is_locked("f", 5)

    def test_full_stripe_parity_write_does_not_need_lock(self):
        system = make_system(scheme="raid5")
        iod = system.iods[0]
        # unlock=False: a full-stripe parity write with no prior read.
        rpc(system, iod, msg.ParityWriteReq(
            "f", group=0, local_offset=0, intra=(0, 4),
            payload=Payload.zeros(4), unlock=False, xid=9))
        assert not iod.locks.is_locked("f", 0)

    def test_parity_payload_length_checked(self):
        system = make_system(scheme="raid5")
        with pytest.raises(ProtocolError):
            rpc(system, system.iods[0], msg.ParityWriteReq(
                "f", group=0, local_offset=0, intra=(0, 8),
                payload=Payload.zeros(4), xid=2))


class TestFailureBehaviour:
    def test_failed_server_rejects_everything(self):
        system = make_system()
        system.fail_server(0)
        with pytest.raises(ServerFailed):
            rpc(system, system.iods[0],
                msg.ReadReq("f", kind="data", offset=0, length=1))

    def test_repair_restores_service_with_wiped_state(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"x")))
        iod.fail()
        iod.repair(wipe=True)
        response = rpc(system, iod, msg.ReadReq("f", kind="data",
                                                offset=0, length=1))
        assert response.payload.to_bytes() == b"\x00"  # fresh disk

    def test_repair_without_wipe_keeps_data(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.from_bytes(b"x")))
        iod.fail()
        iod.repair(wipe=False)
        response = rpc(system, iod, msg.ReadReq("f", kind="data",
                                                offset=0, length=1))
        assert response.payload.to_bytes() == b"x"


class TestMaintenance:
    def test_fsync_flushes_all_local_files(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.WriteReq("f", kind="data", offset=0,
                                      payload=Payload.zeros(8 * KiB)))
        rpc(system, iod, msg.WriteReq("f", kind="red", offset=0,
                                      payload=Payload.zeros(8 * KiB)))
        rpc(system, iod, msg.FsyncReq("f"))
        assert iod.node.cache.dirty_bytes == 0

    def test_truncate_overflow(self):
        system = make_system()
        iod = system.iods[0]
        rpc(system, iod, msg.OverflowWriteReq(
            "f", ranges=[(0, 4)], payload=Payload.from_bytes(b"data")))
        rpc(system, iod, msg.TruncateOverflowReq("f"))
        assert iod.overflow["f"].allocated_bytes == 0

    def test_storage_of_unknown_file_zeroes(self):
        system = make_system()
        assert system.iods[0].storage_of("ghost") == {
            "data": 0, "red": 0, "ovf": 0, "ovfm": 0}
