"""Kernel fast paths: tombstone interrupt detach and inlined dispatch.

The hot-path rewrite (inlined ``_schedule``, the Timeout no-callback
lane, O(1) interrupt detach) must be behaviourally invisible; these
tests pin down the corners the rewrite could have bent.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestInterruptTombstone:
    def test_interrupted_waiter_not_resumed_when_target_fires(self, env):
        """The stale callback slot is tombstoned; the old target firing
        later must not resume the process a second time."""
        trigger = env.event()
        resumes = []

        def waiter():
            try:
                yield trigger
                resumes.append("value")
            except Interrupt:
                resumes.append("interrupt")
                yield env.timeout(5.0)
                resumes.append("slept")

        p = env.process(waiter())

        def driver():
            yield env.timeout(1.0)
            p.interrupt()
            yield env.timeout(1.0)
            trigger.succeed("late")  # fires while waiter sleeps

        env.process(driver())
        env.run()
        assert resumes == ["interrupt", "slept"]

    def test_rewaiting_same_event_after_interrupt(self, env):
        """Interrupt, then yield the *same* pending event again: only the
        fresh subscription may resume the process."""
        trigger = env.event()
        log = []

        def waiter():
            try:
                yield trigger
            except Interrupt:
                log.append("interrupted")
            value = yield trigger  # re-subscribe to the same event
            log.append(value)

        p = env.process(waiter())

        def driver():
            yield env.timeout(1.0)
            p.interrupt()
            yield env.timeout(1.0)
            trigger.succeed("finally")

        env.process(driver())
        env.run()
        assert log == ["interrupted", "finally"]

    def test_shared_event_other_waiters_unaffected(self, env):
        """Tombstoning one waiter's slot must not disturb the other
        subscribers of the same event (indices are positional)."""
        trigger = env.event()
        woken = []

        def waiter(name):
            try:
                value = yield trigger
                woken.append((name, value))
            except Interrupt:
                woken.append((name, "interrupted"))

        env.process(waiter("a"), name="a")
        victim = env.process(waiter("b"), name="b")
        env.process(waiter("c"), name="c")

        def driver():
            yield env.timeout(1.0)
            victim.interrupt()
            yield env.timeout(1.0)
            trigger.succeed("go")

        env.process(driver())
        env.run()
        assert sorted(woken) == [("a", "go"), ("b", "interrupted"),
                                 ("c", "go")]

    def test_interrupt_delivered_at_current_time(self, env):
        times = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                times.append(env.now)

        p = env.process(sleeper())

        def driver():
            yield env.timeout(3.0)
            p.interrupt()

        env.process(driver())
        env.run()
        assert times == [3.0]


class TestDispatchFastLane:
    def test_unawaited_timeouts_advance_the_clock(self, env):
        """Callback-less timeouts take the no-callback lane but still
        drive time forward."""
        env.timeout(5.0)
        env.timeout(2.0)
        env.run()
        assert env.now == 5.0

    def test_failed_event_still_raises_after_fast_lane(self, env):
        ev = env.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            env.run()

    def test_negative_timeout_still_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_step_skips_tombstoned_callbacks(self, env):
        """Direct step() (not just run()) honours tombstones."""
        trigger = env.event()

        def waiter():
            try:
                yield trigger
            except Interrupt:
                yield env.timeout(10.0)

        p = env.process(waiter())
        env.step()  # Initialize: waiter now subscribed to trigger
        p.interrupt()
        env.step()  # deliver the interrupt; tombstones the slot
        trigger.succeed("x")
        env.step()  # dispatch trigger: only a tombstone remains
        assert p.is_alive  # still sleeping on the 10s timeout
        env.run()
        assert not p.is_alive


class TestSchedulingOrderUnchanged:
    def test_same_time_events_fire_in_scheduling_order(self, env):
        order = []

        def make(name):
            def proc():
                yield env.timeout(1.0)
                order.append(name)
            return proc

        for name in ("a", "b", "c"):
            env.process(make(name)())
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_beats_normal_at_same_time(self, env):
        order = []

        def child():
            order.append("child-start")
            yield env.timeout(1.0)
            order.append("child-done")
            return "v"

        def parent():
            value = yield env.process(child())
            order.append(f"parent-got-{value}")

        env.process(parent())
        env.run()
        assert order == ["child-start", "child-done", "parent-got-v"]
