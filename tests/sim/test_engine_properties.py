"""Property-based tests of the discrete-event kernel.

The kernel underpins every result in the repository; these properties
hold for *any* process structure hypothesis can compose.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource


# A little process language: each worker is a list of actions.
action = st.one_of(
    st.tuples(st.just("sleep"), st.floats(min_value=0.0, max_value=5.0,
                                          allow_nan=False)),
    st.tuples(st.just("hold"), st.floats(min_value=0.0, max_value=3.0,
                                         allow_nan=False)),
)
program = st.lists(action, min_size=1, max_size=6)


@settings(max_examples=60, deadline=None)
@given(st.lists(program, min_size=1, max_size=8),
       st.integers(min_value=1, max_value=3))
def test_clock_monotone_and_resources_conserved(programs, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    observed_times = []
    max_held = {"value": 0}

    def worker(prog):
        for op, amount in prog:
            observed_times.append(env.now)
            if op == "sleep":
                yield env.timeout(amount)
            else:
                with res.request() as req:
                    yield req
                    max_held["value"] = max(max_held["value"], res.count)
                    yield env.timeout(amount)

    for prog in programs:
        env.process(worker(prog))
    env.run()

    # 1. The clock never runs backwards.
    assert all(b >= a for a, b in zip(observed_times, observed_times[1:]))
    # 2. Capacity is never exceeded and everything is released at the end.
    assert max_held["value"] <= capacity
    assert res.count == 0
    assert not res.queue
    # 3. The run drains completely (no stuck processes).
    assert env.peek() == float("inf")


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=20))
def test_all_of_fires_at_max_timeout(delays):
    env = Environment()
    result = {}

    def waiter():
        events = [env.timeout(d) for d in delays]
        yield env.all_of(events)
        result["t"] = env.now

    env.process(waiter())
    env.run()
    assert result["t"] == max(delays)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=20))
def test_any_of_fires_at_min_timeout(delays):
    env = Environment()
    result = {}

    def waiter():
        events = [env.timeout(d) for d in delays]
        yield env.any_of(events)
        result["t"] = env.now

    env.process(waiter())
    env.run()
    assert result["t"] == min(delays)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.floats(min_value=0.0, max_value=2.0,
                                   allow_nan=False),
                         min_size=1, max_size=5),
                min_size=1, max_size=6))
def test_runs_are_deterministic(programs):
    def trace():
        env = Environment()
        log = []

        def worker(k, delays):
            for d in delays:
                yield env.timeout(d)
                log.append((round(env.now, 9), k))

        for k, delays in enumerate(programs):
            env.process(worker(k, delays))
        env.run()
        return log

    assert trace() == trace()
