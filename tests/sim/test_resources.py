"""Tests for Resource / FifoLock / Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FifoLock, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_enforced(self, env):
        res = Resource(env, capacity=2)
        spans = []

        def worker(k):
            with res.request() as req:
                yield req
                start = env.now
                yield env.timeout(10)
                spans.append((k, start, env.now))

        for k in range(4):
            env.process(worker(k))
        env.run()
        # Two run at a time: starts at 0,0,10,10.
        starts = sorted(s for _k, s, _e in spans)
        assert starts == [0, 0, 10, 10]

    def test_fifo_granting(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(k):
            with res.request() as req:
                yield req
                order.append(k)
                yield env.timeout(1)

        for k in range(5):
            env.process(worker(k))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_on_exception(self, env):
        res = Resource(env, capacity=1)
        got = []

        def crasher():
            with res.request() as req:
                yield req
                yield env.timeout(1)
                raise ValueError("die holding the resource")

        def waiter():
            with res.request() as req:
                yield req
                got.append(env.now)

        def supervisor(target):
            with pytest.raises(ValueError):
                yield target

        crash_proc = env.process(crasher())
        env.process(supervisor(crash_proc))
        env.process(waiter())
        env.run()
        assert got == [1]  # granted right after the crasher released

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        holder_req = res.request()  # granted immediately
        queued = res.request()
        assert not queued.triggered
        res.release(queued)  # cancellation
        res.release(holder_req)
        assert res.count == 0

    def test_release_unknown_rejected(self, env):
        res = Resource(env, capacity=1)
        granted = res.request()
        res.release(granted)
        with pytest.raises(SimulationError):
            res.release(granted)

    def test_wait_time_statistics(self, env):
        res = Resource(env, capacity=1)

        def worker():
            with res.request() as req:
                yield req
                yield env.timeout(4)

        env.process(worker())
        env.process(worker())
        env.run()
        assert res.total_waits == 1
        assert res.total_wait_time == 4

    def test_held_helper(self, env):
        res = Resource(env, capacity=1)

        def worker():
            yield from res.held(3)
            return env.now

        env.process(worker())
        p = env.process(worker())
        assert env.run(until=p) == 6

    def test_bad_capacity(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)


class TestFifoLock:
    def test_locked_flag(self, env):
        lock = FifoLock(env)
        assert not lock.locked
        req = lock.request()
        assert lock.locked
        lock.release(req)
        assert not lock.locked


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("a")

        def consumer():
            item = yield store.get()
            return item

        p = env.process(consumer())
        assert env.run(until=p) == "a"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (env.now, item)

        def producer():
            yield env.timeout(5)
            store.put("late")

        p = env.process(consumer())
        env.process(producer())
        assert env.run(until=p) == (5, "late")

    def test_fifo_order_of_items(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        out = []

        def consumer():
            for _ in range(3):
                out.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert out == [0, 1, 2]

    def test_fifo_order_of_getters(self, env):
        store = Store(env)
        out = []

        def consumer(k):
            item = yield store.get()
            out.append((k, item))

        env.process(consumer(0))
        env.process(consumer(1))

        def producer():
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer())
        env.run()
        assert out == [(0, "x"), (1, "y")]

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
