"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestTimeouts:
    def test_clock_advances(self, env):
        log = []

        def proc():
            yield env.timeout(1.5)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5, 3.5]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self, env):
        result = []

        def proc():
            value = yield env.timeout(1, value="ping")
            result.append(value)

        env.process(proc())
        env.run()
        assert result == ["ping"]

    def test_same_time_fifo_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            env.process(proc(tag))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_time(self, env):
        hits = []

        def proc():
            while True:
                yield env.timeout(1)
                hits.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert hits == [1, 2, 3]
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self, env):
        def proc():
            yield env.timeout(1)

        env.process(proc())
        env.run(until=5.0)
        assert env.now == 5.0
        with pytest.raises(SimulationError, match="in the past"):
            env.run(until=2.0)
        # The current instant is a valid (no-op) deadline.
        env.run(until=5.0)
        assert env.now == 5.0


class TestProcesses:
    def test_process_return_value(self, env):
        def child():
            yield env.timeout(2)
            return 42

        def parent():
            value = yield env.process(child())
            return value + 1

        p = env.process(parent())
        assert env.run(until=p) == 43

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("boom")

        def parent():
            with pytest.raises(ValueError, match="boom"):
                yield env.process(child())
            return "handled"

        p = env.process(parent())
        assert env.run(until=p) == "handled"

    def test_unhandled_process_exception_surfaces_in_run(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("lost error")

        env.process(proc())
        with pytest.raises(RuntimeError, match="lost error"):
            env.run()

    def test_yield_non_event_fails_process(self, env):
        def proc():
            yield 17  # type: ignore[misc]

        p = env.process(proc())
        with pytest.raises(SimulationError, match="not an Event"):
            env.run(until=p)

    def test_waiting_on_already_finished_process(self, env):
        def child():
            return "done"
            yield  # pragma: no cover

        def parent(ch):
            yield env.timeout(5)
            value = yield ch
            return value

        ch = env.process(child())
        p = env.process(parent(ch))
        assert env.run(until=p) == "done"

    def test_deadlock_detected(self, env):
        def proc():
            yield env.event()  # never triggered

        p = env.process(proc())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=p)


class TestEvents:
    def test_manual_succeed(self, env):
        ev = env.event()
        got = []

        def waiter():
            got.append((yield ev))

        def trigger():
            yield env.timeout(3)
            ev.succeed("x")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got == ["x"]

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]


class TestConditions:
    def test_all_of_collects_values(self, env):
        def parent():
            events = [env.timeout(d, value=d) for d in (3, 1, 2)]
            values = yield env.all_of(events)
            return (env.now, values)

        p = env.process(parent())
        now, values = env.run(until=p)
        assert now == 3
        assert values == [3, 1, 2]  # creation order preserved

    def test_any_of_first_value(self, env):
        def parent():
            events = [env.timeout(d, value=d) for d in (3, 1, 2)]
            value = yield env.any_of(events)
            return (env.now, value)

        p = env.process(parent())
        assert env.run(until=p) == (1, 1)

    def test_all_of_empty(self, env):
        def parent():
            values = yield env.all_of([])
            return values

        p = env.process(parent())
        assert env.run(until=p) == []

    def test_all_of_fails_fast(self, env):
        def bad():
            yield env.timeout(1)
            raise KeyError("nope")

        def parent():
            with pytest.raises(KeyError):
                yield env.all_of([env.process(bad()), env.timeout(10)])
            return env.now

        p = env.process(parent())
        assert env.run(until=p) == 1


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                log.append((env.now, intr.cause))

        def poker(target):
            yield env.timeout(2)
            target.interrupt("wake up")

        target = env.process(sleeper())
        env.process(poker(target))
        env.run()
        assert log == [(2, "wake up")]

    def test_interrupted_process_can_continue(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            return env.now

        def poker(target):
            yield env.timeout(2)
            target.interrupt()

        target = env.process(sleeper())
        env.process(poker(target))
        assert env.run(until=target) == 3

    def test_cannot_interrupt_dead_process(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestDeterminism:
    def test_identical_runs(self):
        def trace():
            env = Environment()
            log = []

            def worker(k):
                for i in range(3):
                    yield env.timeout(0.5 * (k + 1))
                    log.append((env.now, k, i))

            for k in range(4):
                env.process(worker(k))
            env.run()
            return log

        assert trace() == trace()
