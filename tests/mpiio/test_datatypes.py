"""Tests for MPI-lite access patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpiio.datatypes import AccessPattern, contiguous, merge, strided
from repro.util.intervals import Extent


class TestConstruction:
    def test_contiguous(self):
        p = contiguous(100, 50)
        assert p.pieces == ((100, 50),)
        assert p.total_bytes == 50
        assert p.extent == (100, 150)

    def test_strided(self):
        p = strided(0, block=10, stride=100, count=3)
        assert p.pieces == ((0, 10), (100, 10), (200, 10))
        assert p.total_bytes == 30
        assert p.extent == (0, 210)

    def test_adjacent_blocks_allowed(self):
        p = strided(0, block=10, stride=10, count=3)
        assert p.total_bytes == 30

    def test_overlapping_stride_rejected(self):
        with pytest.raises(ValueError):
            strided(0, block=20, stride=10, count=2)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            AccessPattern(((100, 10), (0, 10)))

    def test_overlapping_rejected(self):
        with pytest.raises(ValueError):
            AccessPattern(((0, 10), (5, 10)))

    def test_empty_pattern(self):
        p = AccessPattern(())
        assert p.total_bytes == 0
        assert p.extent == (0, 0)


class TestClip:
    def test_clip_inside_piece(self):
        p = contiguous(0, 100)
        assert p.clip(20, 30).pieces == ((20, 10),)

    def test_clip_across_pieces(self):
        p = strided(0, block=10, stride=50, count=3)
        clipped = p.clip(5, 105)
        assert clipped.pieces == ((5, 5), (50, 10), (100, 5))

    def test_clip_outside(self):
        p = contiguous(0, 10)
        assert p.clip(20, 30).pieces == ()


class TestMerge:
    def test_merge_disjoint(self):
        region = merge([contiguous(0, 10), contiguous(20, 10)])
        assert list(region) == [Extent(0, 10), Extent(20, 30)]

    def test_merge_interleaved_strides_coalesce(self):
        # Two ranks with complementary strides tile a contiguous region —
        # the case two-phase I/O exists for.
        a = strided(0, block=10, stride=20, count=4)
        b = strided(10, block=10, stride=20, count=4)
        region = merge([a, b])
        assert list(region) == [Extent(0, 80)]


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 1000), st.integers(1, 50), st.integers(0, 2000),
       st.integers(0, 2000))
def test_clip_preserves_bytes(offset, length, a, b):
    lo, hi = min(a, b), max(a, b)
    p = contiguous(offset, length)
    clipped = p.clip(lo, hi)
    expected = max(0, min(offset + length, hi) - max(offset, lo))
    assert clipped.total_bytes == expected
