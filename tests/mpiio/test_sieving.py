"""Tests for data sieving (independent non-contiguous I/O)."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ConfigError
from repro.mpiio.datatypes import AccessPattern, contiguous, strided
from repro.mpiio.sieving import SievingConfig, sieved_read, sieved_write
from repro.units import KiB


def make_system(scheme="hybrid", content=True):
    return System(CSARConfig(scheme=scheme, num_servers=6, num_clients=1,
                             stripe_unit=4 * KiB, content_mode=content))


def write_image(system, name, image):
    client = system.client()

    def work():
        yield from client.create(name)
        yield from client.write(name, 0, image)

    system.run(work())


def expected_gather(image, pattern):
    parts = []
    at = 0
    for off, length in pattern.pieces:
        parts.append((at, image.slice(off, off + length)))
        at += length
    return Payload.assemble(pattern.total_bytes, parts)


class TestSievedRead:
    def test_strided_read_correct(self):
        system = make_system()
        image = Payload.pattern(64 * KiB, seed=1)
        write_image(system, "f", image)
        pattern = strided(100, block=200, stride=1000, count=50)

        def work():
            out = yield from sieved_read(system.client(), "f", pattern)
            return out

        assert system.run(work()) == expected_gather(image, pattern)

    def test_empty_pattern(self):
        system = make_system()
        write_image(system, "f", Payload.zeros(1024))

        def work():
            out = yield from sieved_read(system.client(), "f",
                                         AccessPattern(()))
            return out

        assert len(system.run(work())) == 0

    def test_low_density_falls_back_to_piecewise(self):
        system = make_system(content=False)
        write_image(system, "f", Payload.virtual(1024 * KiB))
        # Two tiny pieces a megabyte apart: sieving would read ~1 MiB.
        pattern = AccessPattern(((0, 64), (1000 * KiB, 64)))
        cfg = SievingConfig(min_density=0.01)

        def work():
            yield from sieved_read(system.client(), "f", pattern, cfg)

        system.run(work())
        assert system.metrics.get("client.bytes_read") == 128

    def test_sieving_faster_for_dense_small_pieces(self):
        pattern = strided(0, block=512, stride=1024, count=256)

        def run(density_threshold):
            system = make_system(content=False)
            write_image(system, "f", Payload.virtual(256 * KiB))
            cfg = SievingConfig(min_density=density_threshold)

            def work():
                yield from sieved_read(system.client(), "f", pattern, cfg)

            return system.timed(work())[0]

        # density 1.0 requires full coverage -> this 50%-dense pattern
        # falls back to piecewise reads, which cost far more round trips.
        assert run(0.0) < run(1.0)


class TestSievedWrite:
    def test_strided_write_correct(self):
        system = make_system()
        base = Payload.pattern(64 * KiB, seed=2)
        write_image(system, "f", base)
        pattern = strided(300, block=100, stride=700, count=40)
        data = Payload.pattern(pattern.total_bytes, seed=3)

        def work():
            yield from sieved_write(system.client(), "f", pattern, data)
            out = yield from system.client().read("f", 0, 64 * KiB)
            return out

        out = system.run(work())
        expected = base
        at = 0
        for off, length in pattern.pieces:
            expected = expected.overlay(off, data.slice(at, at + length))
            at += length
        assert out == expected

    def test_fully_covered_chunk_skips_preread(self):
        system = make_system(content=False)
        write_image(system, "f", Payload.virtual(64 * KiB))
        system.metrics.counters.pop("client.bytes_read", None)
        pattern = contiguous(0, 32 * KiB)

        def work():
            yield from sieved_write(system.client(), "f", pattern,
                                    Payload.virtual(32 * KiB))

        system.run(work())
        assert system.metrics.get("client.bytes_read") == 0

    def test_payload_size_checked(self):
        system = make_system()

        def work():
            with pytest.raises(ConfigError):
                yield from sieved_write(system.client(), "f",
                                        contiguous(0, 100),
                                        Payload.zeros(5))

        system.run(work())

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            SievingConfig(read_buffer=0)
        with pytest.raises(ConfigError):
            SievingConfig(min_density=2.0)
