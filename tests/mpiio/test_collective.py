"""Tests for two-phase collective I/O over CSAR."""

import pytest

from repro import CSARConfig, Payload, System
from repro.errors import ConfigError
from repro.mpiio import CollectiveConfig, MPIFile, contiguous, strided
from repro.units import KiB

UNIT = 4 * KiB


def make_system(clients=4, scheme="hybrid", **kw):
    kw.setdefault("stripe_unit", UNIT)
    kw.setdefault("content_mode", True)
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, **kw))


def payload_for(pattern, seed):
    return Payload.pattern(pattern.total_bytes, seed=seed)


class TestCollectiveWrite:
    def test_interleaved_strides_roundtrip(self):
        # 4 ranks each own every 4th record: the canonical case where
        # independent I/O would be thousands of tiny writes.
        system = make_system(clients=4)
        f = MPIFile(system, "bt")
        record = 512
        count = 32
        contribs = {}
        for rank in range(4):
            pattern = strided(rank * record, block=record,
                              stride=4 * record, count=count)
            contribs[rank] = (pattern, payload_for(pattern, seed=rank))

        def work():
            yield from f.open()
            yield from f.collective_write(contribs)
            out = yield from f.read_at(0, 0, 4 * record * count)
            return out

        out = system.run(work())
        # Build the reference image.
        expected = Payload.zeros(4 * record * count)
        for rank, (pattern, buf) in contribs.items():
            at = 0
            for off, length in pattern.pieces:
                expected = expected.overlay(off, buf.slice(at, at + length))
                at += length
        assert out == expected

    def test_collective_merges_into_large_requests(self):
        # The ROMIO effect the paper relies on: the file system sees a few
        # large writes, not per-record ones.
        system = make_system(clients=4, content_mode=False)
        f = MPIFile(system, "bt", CollectiveConfig(cb_nodes=2))
        record = 256
        contribs = {
            rank: (strided(rank * record, record, 4 * record, 64), None)
            for rank in range(4)}

        def work():
            yield from f.open()
            yield from f.collective_write(contribs)

        system.run(work())
        total = 4 * 64 * record
        writes = system.metrics.get("client.bytes_written")
        assert writes == total
        # With 2 aggregators and a contiguous union, the PVFS layer saw 2
        # large writes (one per file domain), mostly full stripes —
        # independent per-record writes would have been 100% partial.
        assert system.metrics.get("hybrid.full_stripe_bytes") > 0.5 * total

    def test_sparse_union_writes_only_covered_extents(self):
        system = make_system(clients=2)
        f = MPIFile(system, "sparse")
        a = contiguous(0, 1000)
        b = contiguous(50_000, 1000)
        contribs = {0: (a, payload_for(a, 1)), 1: (b, payload_for(b, 2))}

        def work():
            yield from f.open()
            yield from f.collective_write(contribs)

        system.run(work())
        assert system.metrics.get("client.bytes_written") == 2000
        # The hole was not written.
        assert system.manager.files["sparse"].size == 51_000

    def test_overlapping_contributions_rejected(self):
        system = make_system(clients=2)
        f = MPIFile(system, "x")
        a = contiguous(0, 100)
        b = contiguous(50, 100)
        contribs = {0: (a, payload_for(a, 1)), 1: (b, payload_for(b, 2))}

        def work():
            yield from f.open()
            with pytest.raises(ConfigError):
                yield from f.collective_write(contribs)

        system.run(work())

    def test_payload_size_mismatch_rejected(self):
        system = make_system(clients=1)
        f = MPIFile(system, "x")

        def work():
            yield from f.open()
            with pytest.raises(ConfigError):
                yield from f.collective_write(
                    {0: (contiguous(0, 100), Payload.zeros(5))})

        system.run(work())

    def test_empty_collective_is_noop(self):
        system = make_system(clients=1)
        f = MPIFile(system, "x")

        def work():
            yield from f.open()
            from repro.mpiio.datatypes import AccessPattern
            yield from f.collective_write({0: (AccessPattern(()), None)})

        system.run(work())
        assert system.metrics.get("client.bytes_written") == 0

    def test_aggregator_count_limits_domains(self):
        system = make_system(clients=4, content_mode=False)
        f = MPIFile(system, "x", CollectiveConfig(cb_nodes=1))
        contribs = {
            rank: (contiguous(rank * 10_000, 10_000), None)
            for rank in range(4)}

        def work():
            yield from f.open()
            yield from f.collective_write(contribs)

        system.run(work())
        # Only rank 0 aggregates: all file writes issued by client0.
        assert system.metrics.get("client.bytes_written") == 40_000


class TestCollectiveRead:
    def test_strided_read_roundtrip(self):
        system = make_system(clients=3)
        f = MPIFile(system, "r")
        image = Payload.pattern(30_000, seed=9)

        def setup():
            yield from f.open()
            yield from f.write_at(0, 0, image)

        system.run(setup())

        requests = {rank: strided(rank * 100, 100, 300, 40)
                    for rank in range(3)}

        def work():
            out = yield from f.collective_read(requests)
            return out

        results = system.run(work())
        for rank, pattern in requests.items():
            expected_parts = []
            at = 0
            for off, length in pattern.pieces:
                expected_parts.append((at, image.slice(off, off + length)))
                at += length
            expected = Payload.assemble(pattern.total_bytes, expected_parts)
            assert results[rank] == expected

    def test_collective_read_in_extent_mode(self):
        system = make_system(clients=2, content_mode=False)
        f = MPIFile(system, "r")

        def setup():
            yield from f.open()
            yield from f.write_at(0, 0, Payload.virtual(10_000))

        system.run(setup())

        def work():
            out = yield from f.collective_read(
                {0: contiguous(0, 5_000), 1: contiguous(5_000, 5_000)})
            return out

        results = system.run(work())
        assert results[0].is_virtual and len(results[0]) == 5_000

    def test_empty_read(self):
        system = make_system(clients=1)
        f = MPIFile(system, "r")

        def work():
            yield from f.open()
            from repro.mpiio.datatypes import AccessPattern
            out = yield from f.collective_read({0: AccessPattern(())})
            return out

        results = system.run(work())
        assert len(results[0]) == 0


class TestTimingEffect:
    def test_collective_faster_than_independent_for_tiny_strides(self):
        # The reason ROMIO exists: per-record independent writes pay a
        # round trip each; two-phase I/O pays one redistribution plus a
        # few large writes.
        record = 512
        count = 64

        def collective_time():
            system = make_system(clients=4, content_mode=False)
            f = MPIFile(system, "w")
            contribs = {
                rank: (strided(rank * record, record, 4 * record, count),
                       None)
                for rank in range(4)}

            def work():
                yield from f.open()
                yield from f.collective_write(contribs)

            return system.timed(work())[0]

        def independent_time():
            system = make_system(clients=4, content_mode=False)
            f = MPIFile(system, "w")

            def opener():
                yield from f.open()

            system.run(opener())

            def rank_proc(rank):
                for i in range(count):
                    yield from f.write_at(
                        rank, (i * 4 + rank) * record,
                        Payload.virtual(record))

            return system.timed(*[rank_proc(r) for r in range(4)])[0]

        assert collective_time() < independent_time()


from hypothesis import given, settings
from hypothesis import strategies as st
from repro.mpiio.datatypes import AccessPattern


@settings(max_examples=10, deadline=None)
@given(
    layout=st.lists(st.integers(0, 3), min_size=8, max_size=40),
    cb_nodes=st.integers(1, 4),
)
def test_collective_write_read_roundtrip_property(layout, cb_nodes):
    """Random rank-ownership layouts roundtrip byte-exactly.

    ``layout[i]`` says which rank owns record i; each record is 64 bytes.
    """
    record = 64
    system = make_system(clients=4)
    f = MPIFile(system, "prop", CollectiveConfig(cb_nodes=cb_nodes,
                                                 cb_buffer_size=256))
    contribs = {}
    expected = Payload.zeros(len(layout) * record)
    for rank in range(4):
        pieces = tuple((i * record, record)
                       for i, owner in enumerate(layout) if owner == rank)
        if not pieces:
            continue
        pattern = AccessPattern(pieces)
        buf = Payload.pattern(pattern.total_bytes, seed=100 + rank)
        contribs[rank] = (pattern, buf)
        at = 0
        for off, length in pieces:
            expected = expected.overlay(off, buf.slice(at, at + length))
            at += length
    if not contribs:
        return

    def work():
        yield from f.open()
        yield from f.collective_write(contribs)
        out = yield from f.read_at(0, 0, expected.length)
        return out

    assert system.run(work()) == expected

    # And the collective read agrees per rank.
    def read_work():
        out = yield from f.collective_read(
            {rank: pattern for rank, (pattern, _b) in contribs.items()})
        return out

    results = system.run(read_work())
    for rank, (pattern, buf) in contribs.items():
        assert results[rank] == buf
