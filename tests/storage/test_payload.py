"""Tests for real/virtual payloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.payload import Payload


class TestConstruction:
    def test_from_bytes_roundtrip(self):
        p = Payload.from_bytes(b"hello")
        assert len(p) == 5
        assert p.to_bytes() == b"hello"
        assert not p.is_virtual

    def test_zeros(self):
        assert Payload.zeros(4).to_bytes() == b"\x00" * 4

    def test_virtual(self):
        v = Payload.virtual(10)
        assert v.is_virtual
        assert len(v) == 10
        with pytest.raises(ValueError):
            v.to_bytes()

    def test_pattern_deterministic(self):
        assert Payload.pattern(64, 3) == Payload.pattern(64, 3)
        assert Payload.pattern(64, 3) != Payload.pattern(64, 4)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Payload.virtual(-1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Payload(3, np.zeros(4, dtype=np.uint8))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            Payload(4, np.zeros(4, dtype=np.int32))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Payload.zeros(1))


class TestOperations:
    def test_slice(self):
        p = Payload.from_bytes(b"abcdef")
        assert p.slice(1, 4).to_bytes() == b"bcd"

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            Payload.zeros(4).slice(2, 6)

    def test_slice_is_an_immutable_view(self):
        # Slices are zero-copy views, and immutability is preserved by
        # freezing the buffers: neither the slice nor its source can be
        # mutated through .data.
        p = Payload.from_bytes(b"abc")
        s = p.slice(0, 2)
        assert not s.data.flags.writeable
        assert not p.data.flags.writeable
        with pytest.raises(ValueError):
            s.data[0] = 0
        assert p.to_bytes() == b"abc"
        assert s.to_bytes() == b"ab"

    def test_source_mutation_cannot_corrupt_slices(self):
        # A buffer handed to a Payload is frozen at construction, so the
        # "mutate the source after slicing" hazard of views cannot occur.
        buf = np.frombuffer(b"abc", dtype=np.uint8).copy()
        p = Payload(3, buf)
        s = p.slice(1, 3)
        with pytest.raises(ValueError):
            buf[1] = 0
        assert s.to_bytes() == b"bc"

    def test_virtual_slice(self):
        assert Payload.virtual(10).slice(2, 7).is_virtual

    def test_concat(self):
        p = Payload.from_bytes(b"ab").concat(Payload.from_bytes(b"cd"))
        assert p.to_bytes() == b"abcd"

    def test_concat_virtual_poisons(self):
        p = Payload.from_bytes(b"ab").concat(Payload.virtual(2))
        assert p.is_virtual and len(p) == 4

    def test_xor_real(self):
        a = Payload.from_bytes(b"\xff\x00")
        b = Payload.from_bytes(b"\x0f\x0f")
        assert Payload.xor([a, b], 2).to_bytes() == b"\xf0\x0f"

    def test_xor_pads_to_length(self):
        a = Payload.from_bytes(b"\xff")
        assert Payload.xor([a], 3).to_bytes() == b"\xff\x00\x00"

    def test_xor_virtual_poisons(self):
        out = Payload.xor([Payload.zeros(2), Payload.virtual(2)], 2)
        assert out.is_virtual

    def test_overlay(self):
        base = Payload.from_bytes(b"aaaa")
        out = base.overlay(1, Payload.from_bytes(b"BB"))
        assert out.to_bytes() == b"aBBa"

    def test_overlay_grows(self):
        out = Payload.from_bytes(b"ab").overlay(3, Payload.from_bytes(b"c"))
        assert out.to_bytes() == b"ab\x00c"

    def test_equality_virtual_vs_real(self):
        assert Payload.virtual(2) != Payload.zeros(2)
        assert Payload.virtual(2) == Payload.virtual(2)


def _xored(base: bytes, at: int, patch: bytes) -> bytes:
    out = bytearray(base)
    for i, byte in enumerate(patch):
        out[at + i] ^= byte
    return bytes(out)


class TestPatchEdgeGeometry:
    """overlay/xor_at at the degenerate offsets the RMW path produces:
    empty deltas, the final byte of a piece, and patches whose region
    spans a rope segment boundary."""

    def test_zero_length_overlay_is_identity(self):
        base = Payload.from_bytes(b"abcd")
        for at in (0, 2, 4):
            out = base.overlay(at, Payload.from_bytes(b""))
            assert out.to_bytes() == b"abcd"
            assert out.length == 4

    def test_zero_length_xor_is_identity(self):
        base = Payload.from_bytes(b"abcd")
        for at in (0, 2, 4):
            assert base.xor_at(at, Payload.from_bytes(b"")).to_bytes() \
                == b"abcd"

    def test_final_byte_overlay(self):
        base = Payload.from_bytes(b"abcd")
        assert base.overlay(3, Payload.from_bytes(b"Z")).to_bytes() \
            == b"abcZ"

    def test_final_byte_xor(self):
        base = Payload.from_bytes(b"abcd")
        out = base.xor_at(3, Payload.from_bytes(b"\x01"))
        assert out.to_bytes() == _xored(b"abcd", 3, b"\x01")

    def test_xor_past_the_end_rejected(self):
        base = Payload.from_bytes(b"abcd")
        with pytest.raises(ValueError):
            base.xor_at(4, Payload.from_bytes(b"\x01"))
        with pytest.raises(ValueError):
            base.xor_at(-1, Payload.from_bytes(b"\x01"))

    def test_overlay_spanning_a_rope_boundary(self):
        # The base is a two-segment rope cut at offset 4; the patch
        # covers [2, 6) so it straddles the seam.
        base = Payload.from_bytes(b"abcd").concat(Payload.from_bytes(b"efgh"))
        out = base.overlay(2, Payload.from_bytes(b"WXYZ"))
        assert out.to_bytes() == b"abWXYZgh"

    def test_xor_spanning_a_rope_boundary(self):
        base = Payload.from_bytes(b"abcd").concat(Payload.from_bytes(b"efgh"))
        out = base.xor_at(2, Payload.from_bytes(b"\x01\x02\x03\x04"))
        assert out.to_bytes() == _xored(b"abcdefgh", 2, b"\x01\x02\x03\x04")

    def test_xor_with_a_rope_patch(self):
        # The patch itself is segmented: its internal seam must land
        # at the right absolute offsets of the base.
        base = Payload.from_bytes(b"abcdefgh")
        patch = Payload.from_bytes(b"\x01\x02").concat(
            Payload.from_bytes(b"\x03\x04"))
        out = base.xor_at(3, patch)
        assert out.to_bytes() == _xored(b"abcdefgh", 3, b"\x01\x02\x03\x04")

    def test_xor_at_many_folds_every_patch(self):
        base = Payload.from_bytes(b"abcdefgh")
        out = base.xor_at_many([(0, Payload.from_bytes(b"\x01")),
                                (7, Payload.from_bytes(b"\x02")),
                                (3, Payload.from_bytes(b""))])
        expected = _xored(_xored(b"abcdefgh", 0, b"\x01"), 7, b"\x02")
        assert out.to_bytes() == expected


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=100), st.binary(max_size=100))
def test_xor_is_self_inverse(a, b):
    length = max(len(a), len(b))
    pa, pb = Payload.from_bytes(a), Payload.from_bytes(b)
    parity = Payload.xor([pa, pb], length)
    back = Payload.xor([parity, pb], length)
    assert back.to_bytes()[: len(a)] == a
