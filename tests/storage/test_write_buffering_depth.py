"""Deeper Section 5.2 behaviour: how chunked arrival, alignment and
per-server granularity interact."""

import pytest

from repro import CSARConfig, Payload, System
from repro.hw.node import Node
from repro.hw.params import get_profile
from repro.metrics import Metrics
from repro.sim import Environment
from repro.storage.localfs import LocalFS
from repro.units import KiB


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def make_fs(env, metrics, buffering):
    node = Node(env, "iod0", get_profile("osu8"), metrics)
    return LocalFS(node, content_mode=False, write_buffering=buffering)


class TestCutPoints:
    def test_buffered_has_no_interior_cuts(self):
        env = Environment()
        fs = make_fs(env, Metrics(), buffering=True)
        assert fs._cut_points(100, 1024 * KiB) == []

    def test_unbuffered_cuts_at_net_chunks(self):
        env = Environment()
        fs = make_fs(env, Metrics(), buffering=False)
        chunk = fs.node.profile.net_chunk
        cuts = fs._cut_points(100, 3 * chunk)
        assert cuts == [100 + chunk, 100 + 2 * chunk]

    def test_request_smaller_than_chunk_has_no_cuts(self):
        env = Environment()
        fs = make_fs(env, Metrics(), buffering=False)
        assert fs._cut_points(100, 1000) == []


class TestSystemLevelBuffering:
    def _penalties(self, buffering, offset):
        system = System(CSARConfig(scheme="raid0", num_servers=6,
                                   num_clients=1, stripe_unit=64 * KiB,
                                   content_mode=False,
                                   write_buffering=buffering))
        client = system.client()

        def setup():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.virtual(4096 * KiB))

        system.run(setup())
        system.drop_all_caches()

        def rewrite():
            yield from client.write("f", offset,
                                    Payload.virtual(2048 * KiB))

        system.run(rewrite())
        return system.metrics.get("cache.partial_block_reads")

    def test_aligned_overwrite_never_pays(self):
        # 4 KiB-aligned offsets: even unbuffered chunk boundaries land on
        # block boundaries (net_chunk is a multiple of the block size).
        assert self._penalties(buffering=False, offset=0) == 0
        assert self._penalties(buffering=True, offset=0) == 0

    def test_unaligned_overwrite_pays_per_server_chunk(self):
        buffered = self._penalties(buffering=True, offset=100)
        unbuffered = self._penalties(buffering=False, offset=100)
        assert unbuffered > 2 * buffered > 0

    def test_new_file_never_pays_either_way(self):
        for buffering in (True, False):
            system = System(CSARConfig(scheme="raid0", num_servers=6,
                                       num_clients=1, stripe_unit=64 * KiB,
                                       content_mode=False,
                                       write_buffering=buffering))
            client = system.client()

            def work():
                yield from client.create("f")
                yield from client.write("f", 100,
                                        Payload.virtual(1024 * KiB))

            system.run(work())
            assert system.metrics.get("cache.partial_block_reads") == 0

    def test_padding_partial_blocks_removes_the_drop(self):
        # The paper's diagnostic: "we artificially padded all partial
        # block writes ... this change resulted in about the same
        # bandwidth for the initial write and the overwrite cases."
        # Aligned (padded) rewrites time the same warm or cold.
        system = System(CSARConfig(scheme="raid0", num_servers=6,
                                   num_clients=1, stripe_unit=64 * KiB,
                                   content_mode=False))
        client = system.client()

        def initial():
            yield from client.create("f")
            yield from client.write("f", 0, Payload.virtual(2048 * KiB))

        t_initial, _ = system.timed(initial())
        system.drop_all_caches()

        def overwrite():
            yield from client.write("f", 0, Payload.virtual(2048 * KiB))

        t_overwrite, _ = system.timed(overwrite())
        assert t_overwrite == pytest.approx(t_initial, rel=0.1)
