"""Property-based tests for payload algebra (the RAID arithmetic)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.payload import Payload

binary = st.binary(min_size=0, max_size=128)


@settings(max_examples=80, deadline=None)
@given(binary, binary, st.integers(0, 64))
def test_overlay_matches_bytearray_semantics(base, patch, at):
    p = Payload.from_bytes(base).overlay(at, Payload.from_bytes(patch))
    ref = bytearray(max(len(base), at + len(patch)))
    ref[: len(base)] = base
    ref[at: at + len(patch)] = patch
    assert p.to_bytes() == bytes(ref)


@settings(max_examples=80, deadline=None)
@given(binary, binary)
def test_xor_at_is_involution(base, delta):
    if len(delta) > len(base):
        delta = delta[: len(base)]
    p = Payload.from_bytes(base)
    d = Payload.from_bytes(delta)
    twice = p.xor_at(0, d).xor_at(0, d)
    assert twice == p


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), binary), max_size=6))
def test_assemble_equivalent_to_sequential_overlays(parts):
    clipped = []
    length = 128
    for at, data in parts:
        data = data[: max(0, length - at)]
        if data:
            clipped.append((at, Payload.from_bytes(data)))
    assembled = Payload.assemble(length, clipped)
    manual = Payload.zeros(length)
    for at, piece in clipped:
        manual = manual.overlay(at, piece)
    # Overlapping parts differ only when later parts overwrite earlier
    # ones in overlay order; assemble also applies in list order.
    assert assembled == manual.slice(0, length)


@settings(max_examples=60, deadline=None)
@given(binary, st.data())
def test_slice_concat_identity(data, draw):
    p = Payload.from_bytes(data)
    if not data:
        return
    cut = draw.draw(st.integers(0, len(data)))
    rejoined = p.slice(0, cut).concat(p.slice(cut, len(data)))
    assert rejoined == p


@settings(max_examples=60, deadline=None)
@given(st.lists(binary, min_size=1, max_size=5), st.integers(1, 128))
def test_xor_order_independent(blocks, length):
    import random

    parts = [Payload.from_bytes(b) for b in blocks]
    forward = Payload.xor(parts, length)
    rng = random.Random(42)
    shuffled = parts[:]
    rng.shuffle(shuffled)
    assert Payload.xor(shuffled, length) == forward


@settings(max_examples=40, deadline=None)
@given(binary)
def test_virtual_mirrors_real_lengths(data):
    real = Payload.from_bytes(data)
    virt = Payload.virtual(len(data))
    assert len(real) == len(virt)
    if data:
        assert len(real.slice(0, len(data) // 2)) \
            == len(virt.slice(0, len(data) // 2))
    assert len(real.concat(real)) == len(virt.concat(virt))
    assert real.overlay(3, real).length == virt.overlay(3, virt).length
