"""Tests for the cache-mediated local file system."""

import pytest

from repro.hw.node import Node
from repro.hw.params import get_profile
from repro.metrics import Metrics
from repro.sim import Environment
from repro.storage.localfs import LocalFS
from repro.storage.payload import Payload
from repro.errors import FileNotFound
from repro.units import KiB


@pytest.fixture
def env():
    return Environment()


def make_fs(env, metrics=None, write_buffering=True):
    node = Node(env, "iod0", get_profile("osu8"), metrics or Metrics())
    return LocalFS(node, content_mode=True, write_buffering=write_buffering)


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


class TestBasics:
    def test_write_read_roundtrip(self, env):
        fs = make_fs(env)
        run(env, fs.write("data", 0, Payload.from_bytes(b"abc")))
        out = run(env, fs.read("data", 0, 3))
        assert out.to_bytes() == b"abc"

    def test_read_missing_file_creates_empty(self, env):
        # PVFS iods create local files lazily; reading uncreated regions
        # yields zeros, like a sparse file.
        fs = make_fs(env)
        out = run(env, fs.read("nofile", 0, 4))
        assert out.to_bytes() == b"\x00" * 4

    def test_file_size_errors_on_missing(self, env):
        fs = make_fs(env)
        with pytest.raises(FileNotFound):
            fs.file_size("ghost")

    def test_listing(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.zeros(10)))
        run(env, fs.write("b", 5, Payload.zeros(10)))
        assert fs.listing() == {"a": 10, "b": 15}

    def test_total_size(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.zeros(10)))
        run(env, fs.write("b", 0, Payload.zeros(30)))
        assert fs.total_size() == 40
        assert fs.total_size(["a"]) == 10
        assert fs.total_size(["a", "ghost"]) == 10


class TestTimingIntegration:
    def test_write_faster_than_disk_until_fsync(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.zeros(1 * KiB * KiB)))
        t_write = env.now
        run(env, fs.fsync("a"))
        assert env.now > t_write  # fsync paid the disk time
        assert fs.node.disk.bytes_written == 1 * KiB * KiB

    def test_warm_read_free_after_write(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.zeros(64 * KiB)))
        t0 = env.now
        run(env, fs.read("a", 0, 64 * KiB))
        assert env.now == t0
        assert fs.node.disk.reads == 0

    def test_cold_read_after_drop_hits_disk(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.zeros(64 * KiB)))
        run(env, fs.drop_caches())
        run(env, fs.read("a", 0, 64 * KiB))
        assert fs.node.disk.reads > 0

    def test_content_survives_cache_drop(self, env):
        fs = make_fs(env)
        run(env, fs.write("a", 0, Payload.pattern(8 * KiB, 5)))
        run(env, fs.drop_caches())
        assert run(env, fs.read("a", 0, 8 * KiB)) == Payload.pattern(8 * KiB, 5)


class TestWriteBuffering:
    def _overwrite_unaligned(self, env, buffering):
        metrics = Metrics()
        fs = make_fs(env, metrics=metrics, write_buffering=buffering)
        # Preexisting file, then drop caches (the Section 5.2 scenario).
        run(env, fs.write("a", 0, Payload.zeros(1024 * KiB)))
        run(env, fs.drop_caches())
        run(env, fs.write("a", 100, Payload.zeros(512 * KiB)))
        return metrics.get("cache.partial_block_reads")

    def test_buffered_bounded_penalty(self, env):
        assert self._overwrite_unaligned(env, buffering=True) <= 2

    def test_unbuffered_per_chunk_penalty(self):
        env = Environment()
        penalty = self._overwrite_unaligned(env, buffering=False)
        # 512 KiB in 64 KiB chunks -> one partial block per boundary.
        assert penalty >= 8
