"""Tests for sparse block files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.blockfile import BlockFile
from repro.storage.payload import Payload


class TestContentMode:
    def test_write_read_roundtrip(self):
        f = BlockFile("d")
        f.write(100, Payload.from_bytes(b"hello"))
        assert f.read(100, 5).to_bytes() == b"hello"

    def test_holes_read_zero(self):
        f = BlockFile("d")
        f.write(10, Payload.from_bytes(b"xy"))
        assert f.read(0, 14).to_bytes() == b"\x00" * 10 + b"xy\x00\x00"

    def test_read_past_eof_zero(self):
        f = BlockFile("d")
        f.write(0, Payload.from_bytes(b"ab"))
        assert f.read(0, 6).to_bytes() == b"ab" + b"\x00" * 4

    def test_overwrite(self):
        f = BlockFile("d")
        f.write(0, Payload.from_bytes(b"aaaa"))
        f.write(1, Payload.from_bytes(b"BB"))
        assert f.read(0, 4).to_bytes() == b"aBBa"

    def test_size_is_max_end(self):
        f = BlockFile("d")
        f.write(1000, Payload.from_bytes(b"x"))
        assert f.size == 1001
        assert f.allocated_bytes == 1

    def test_zero_length_write_noop(self):
        f = BlockFile("d")
        f.write(50, Payload.from_bytes(b""))
        assert f.size == 0

    def test_negative_offset_rejected(self):
        f = BlockFile("d")
        with pytest.raises(ValueError):
            f.write(-1, Payload.from_bytes(b"x"))
        with pytest.raises(ValueError):
            f.read(-1, 2)

    def test_virtual_payload_rejected_in_content_mode(self):
        f = BlockFile("d")
        with pytest.raises(ValueError):
            f.write(0, Payload.virtual(4))

    def test_punch_hole(self):
        f = BlockFile("d")
        f.write(0, Payload.from_bytes(b"abcdef"))
        f.punch_hole(2, 2)
        assert f.read(0, 6).to_bytes() == b"ab\x00\x00ef"
        assert f.allocated_bytes == 4
        assert f.size == 6

    def test_truncate(self):
        f = BlockFile("d")
        f.write(0, Payload.from_bytes(b"abc"))
        f.truncate()
        assert f.size == 0
        assert f.read(0, 3).to_bytes() == b"\x00\x00\x00"

    def test_grow_across_chunk_boundary(self):
        f = BlockFile("d")
        big = Payload.pattern(3 << 20, seed=1)  # > _GROW
        f.write(0, big)
        assert f.read(0, big.length) == big


class TestExtentMode:
    def test_reads_are_virtual(self):
        f = BlockFile("d", content_mode=False)
        f.write(0, Payload.virtual(100))
        out = f.read(0, 50)
        assert out.is_virtual and len(out) == 50

    def test_accepts_real_payload_but_keeps_extents_only(self):
        f = BlockFile("d", content_mode=False)
        f.write(0, Payload.from_bytes(b"abcd"))
        assert f.size == 4
        assert f.read(0, 4).is_virtual

    def test_accounting_matches_content_mode(self):
        fc = BlockFile("c", content_mode=True)
        fe = BlockFile("e", content_mode=False)
        for off, n in [(0, 10), (100, 20), (5, 10)]:
            fc.write(off, Payload.zeros(n))
            fe.write(off, Payload.virtual(n))
        assert fc.size == fe.size
        assert fc.allocated_bytes == fe.allocated_bytes


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.binary(min_size=1, max_size=50)),
                max_size=12))
def test_blockfile_matches_reference_bytearray(writes):
    f = BlockFile("d")
    ref = bytearray(300)
    hi = 0
    for off, data in writes:
        f.write(off, Payload.from_bytes(data))
        ref[off: off + len(data)] = data
        hi = max(hi, off + len(data))
    assert f.size == hi
    assert f.read(0, 300).to_bytes() == bytes(ref[:300])
