"""SegmentedPayload ≡ flat Payload: the rope must be observationally
identical to the copying representation it replaced.

The reference model is plain ``bytes`` built with the same semantics the
pre-rope Payload had (eager flat copies).  Every operation sequence the
data path performs — slice, concat, assemble, overlay, xor — must give
byte-identical results whether the intermediate values are flat arrays
or lazy segment ropes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.payload import _MAX_SEGMENTS, Payload, SegmentedPayload

binary = st.binary(min_size=0, max_size=96)


def _chunks(draw, data, max_cuts=4):
    """Split ``data`` into a rope by concatenating random slices."""
    if not data:
        return Payload.from_bytes(data)
    cuts = sorted(draw.draw(st.lists(
        st.integers(0, len(data)), min_size=0, max_size=max_cuts)))
    flat = Payload.from_bytes(data)
    rope = Payload.from_bytes(b"")
    prev = 0
    for cut in cuts + [len(data)]:
        rope = rope.concat(flat.slice(prev, cut))
        prev = cut
    return rope


@settings(max_examples=100, deadline=None)
@given(binary, st.data())
def test_rope_round_trips_bytes(data, draw):
    rope = _chunks(draw, data)
    assert rope.to_bytes() == data
    assert rope.length == len(data)


@settings(max_examples=100, deadline=None)
@given(binary, st.data())
def test_rope_slice_matches_bytes_slice(data, draw):
    rope = _chunks(draw, data)
    lo = draw.draw(st.integers(0, len(data)))
    hi = draw.draw(st.integers(lo, len(data)))
    assert rope.slice(lo, hi).to_bytes() == data[lo:hi]


@settings(max_examples=100, deadline=None)
@given(binary, binary, st.data())
def test_rope_concat_matches_bytes_concat(a, b, draw):
    rope = _chunks(draw, a).concat(_chunks(draw, b))
    assert rope.to_bytes() == a + b


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 80), binary), max_size=5),
       st.data())
def test_assemble_of_ropes_matches_reference(parts, draw):
    length = 128
    ref = bytearray(length)
    rope_parts = []
    for at, data in parts:
        data = data[: max(0, length - at)]
        if not data:
            continue
        ref[at: at + len(data)] = data
        rope_parts.append((at, _chunks(draw, data)))
    assert Payload.assemble(length, rope_parts).to_bytes() == bytes(ref)


@settings(max_examples=100, deadline=None)
@given(binary, binary, st.integers(0, 64), st.data())
def test_rope_overlay_matches_flat_overlay(base, patch, at, draw):
    rope = _chunks(draw, base).overlay(at, _chunks(draw, patch))
    flat = Payload.from_bytes(base).overlay(at, Payload.from_bytes(patch))
    assert rope.to_bytes() == flat.to_bytes()


@settings(max_examples=100, deadline=None)
@given(binary, binary, st.data())
def test_rope_xor_at_matches_flat(base, delta, draw):
    if len(delta) > len(base):
        delta = delta[: len(base)]
    rope = _chunks(draw, base).xor_at(0, _chunks(draw, delta))
    flat = Payload.from_bytes(base).xor_at(0, Payload.from_bytes(delta))
    assert rope.to_bytes() == flat.to_bytes()


# ---------------------------------------------------------------------------
# Structural guarantees the data path relies on.

def test_slice_is_view_not_copy():
    p = Payload.from_bytes(bytes(range(64)))
    view = p.slice(8, 24)
    assert view.data.base is not None  # numpy view, not a fresh buffer
    assert np.shares_memory(view.data, p.data)


def test_payload_buffers_are_frozen():
    p = Payload.from_bytes(b"abcd")
    with pytest.raises(ValueError):
        p.data[0] = 0
    with pytest.raises(ValueError):
        p.slice(1, 3).data[0] = 0


def test_source_mutation_cannot_leak_in():
    src = bytearray(b"aaaa")
    p = Payload.from_bytes(src)
    src[0] = ord("z")
    assert p.to_bytes() == b"aaaa"


def test_concat_builds_rope_lazily():
    a = Payload.from_bytes(b"aa")
    b = Payload.from_bytes(b"bb")
    rope = a.concat(b)
    assert isinstance(rope, SegmentedPayload)
    # Segments are the original frozen buffers, not copies.
    segs = list(rope.iter_segments())
    assert [at for at, _ in segs] == [0, 2]
    assert np.shares_memory(segs[0][1], a.data)
    assert np.shares_memory(segs[1][1], b.data)


def test_materialization_is_cached():
    rope = Payload.from_bytes(b"aa").concat(Payload.from_bytes(b"bb"))
    first = rope.data
    assert rope.data is first  # second access reuses the flat buffer


def test_materialized_cache_is_frozen_before_it_escapes():
    # The cache is frozen *before* being stored, so no reader of .data
    # ever sees (or can create) a writable alias of it.
    rope = Payload.from_bytes(b"ab").concat(Payload.from_bytes(b"cd"))
    cache = rope.data
    assert not cache.flags.writeable
    with pytest.raises(ValueError):
        cache[0] = 0
    assert rope.to_bytes() == b"abcd"


def test_writable_copy_cannot_perturb_the_cache():
    # _writable_copy is the sanctioned mutation path; it must hand back
    # fresh bytes, never an alias of the cached materialization.
    rope = Payload.from_bytes(b"ab").concat(Payload.from_bytes(b"cd"))
    cache = rope.data
    dup = rope._writable_copy()
    assert not np.shares_memory(dup, cache)
    dup[:] = 0xFF
    assert rope.to_bytes() == b"abcd"
    assert rope.data is cache


def test_sparse_is_free_and_reads_zero():
    p = Payload.sparse(1 << 20)
    assert not p.is_virtual
    assert list(p.iter_segments()) == []
    assert p.slice(12345, 12349).to_bytes() == b"\x00" * 4


def test_virtual_contagion_through_rope_ops():
    v = Payload.virtual(8)
    r = Payload.from_bytes(b"x" * 8)
    assert v.concat(r).is_virtual
    assert r.concat(v).is_virtual
    assert Payload.assemble(16, [(0, r), (8, v)]).is_virtual
    assert v.slice(2, 6).is_virtual


def test_deep_concat_chain_collapses():
    # A pathological 4x-_MAX_SEGMENTS chain must still round-trip (the
    # rope flattens rather than growing without bound).
    rope = Payload.from_bytes(b"")
    for i in range(_MAX_SEGMENTS * 4):
        rope = rope.concat(Payload.from_bytes(bytes([i & 0xFF])))
    assert rope.length == _MAX_SEGMENTS * 4
    assert rope.to_bytes() == bytes(i & 0xFF for i in range(_MAX_SEGMENTS * 4))
    assert len(list(rope.iter_segments())) <= _MAX_SEGMENTS
