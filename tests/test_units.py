"""Tests for unit helpers."""

import pytest

from repro.units import GiB, KiB, MB, MiB, fmt_bytes, mbps


class TestConstants:
    def test_binary_units(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_decimal_mb(self):
        assert MB == 1_000_000


class TestMbps:
    def test_basic(self):
        assert mbps(10_000_000, 2.0) == pytest.approx(5.0)

    def test_zero_duration(self):
        assert mbps(100, 0.0) == 0.0

    def test_negative_duration(self):
        assert mbps(100, -1.0) == 0.0


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(1536) == "1.5 KiB"

    def test_mib(self):
        assert fmt_bytes(4 * MiB) == "4.0 MiB"

    def test_gib(self):
        assert fmt_bytes(3 * GiB) == "3.0 GiB"

    def test_zero(self):
        assert fmt_bytes(0) == "0 B"
