"""The checked-in API reference must match the code."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_api_docs_are_current():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py"),
         "--check"],
        capture_output=True, text=True, cwd=ROOT)
    assert result.returncode == 0, result.stdout + result.stderr


def test_api_docs_cover_the_public_surface():
    text = (ROOT / "docs" / "API.md").read_text()
    for symbol in ("class System", "class CSARConfig", "class Payload",
                   "class OverflowTable", "class ParityLockTable",
                   "class MPIFile", "class H5File", "def rebuild_server",
                   "def online_scrub", "def reclaim_file",
                   "class FileLinter", "class LockSan", "class Rule",
                   "def lint_paths", "def set_sanitizer_factory"):
        assert symbol in text, f"{symbol} missing from docs/API.md"
