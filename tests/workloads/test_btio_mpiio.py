"""BTIO through the MPI-IO layer, validating the direct model's premise."""

import pytest

from repro import CSARConfig, System
from repro.errors import ConfigError
from repro.units import KiB, MiB
from repro.util.trace import TraceRecorder
from repro.workloads.btio_mpiio import (
    CELL,
    btio_collective_benchmark,
    rank_pattern,
)


def make_system(clients=4, scheme="hybrid"):
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, stripe_unit=64 * KiB,
                             content_mode=False))


class TestRankPattern:
    def test_patterns_partition_the_grid(self):
        grid, nprocs = 16, 4
        total = sum(rank_pattern(r, nprocs, grid).total_bytes
                    for r in range(nprocs))
        assert total == grid ** 3 * CELL

    def test_patterns_are_disjoint(self):
        from repro.mpiio.datatypes import merge

        grid, nprocs = 12, 4
        region = merge(rank_pattern(r, nprocs, grid) for r in range(nprocs))
        assert region.total() == grid ** 3 * CELL  # no double coverage

    def test_pieces_are_small_and_many(self):
        # The raw BT pattern the paper says ROMIO must merge: each piece
        # is one x-run of cells (~KB), thousands per rank.
        pattern = rank_pattern(0, 4, 64)
        assert len(pattern.pieces) == 64 * 32
        assert all(length == 32 * CELL for _off, length in pattern.pieces)

    def test_non_square_process_count_rejected(self):
        with pytest.raises(ConfigError):
            rank_pattern(0, 3, 16)


class TestCollectiveBenchmark:
    def test_premise_pvfs_sees_large_unaligned_writes(self):
        # THE validation: after two-phase merging, the PVFS layer sees
        # ~4 MB writes with unaligned offsets — exactly what Section 6.5
        # describes and what workloads/btio.py models.  Class B geometry
        # (102³ cells over 9 ranks) is the paper's "about 4 MB" case.
        system = make_system(clients=9)
        recorder = TraceRecorder(system)
        btio_collective_benchmark(system, "B", steps=1,
                                  cb_buffer_size=4 * MiB)
        trace = recorder.detach()
        writes = [r for r in trace if r.op == "write"]
        assert writes, "no PVFS-level writes recorded"
        sizes = sorted(r.length for r in writes)
        # Merged into MB-scale requests, bounded by the collective
        # buffer, never tiny — versus the raw pattern's ~450 B pieces.
        assert sizes[len(sizes) // 2] > 2 * MiB
        assert max(sizes) <= 4 * MiB
        assert min(sizes) > 256 * KiB
        # Starting offsets are not stripe-aligned (64 KiB x 5 span).
        span = 5 * 64 * KiB
        unaligned = sum(1 for r in writes if r.offset % span != 0)
        assert unaligned >= len(writes) // 2

    def test_class_a_at_four_ranks_is_stripe_aligned(self):
        # The Table 2 curiosity this layer explains: Class A's per-rank
        # share at 4 processes is exactly 8 stripe spans (2,621,440 B =
        # 8 x 5 x 64 KiB), so every merged write is stripe-aligned and
        # Hybrid stores exactly what RAID5 does (paper: 503 = 503 MB).
        system = make_system(clients=4)
        recorder = TraceRecorder(system)
        btio_collective_benchmark(system, "A", steps=1)
        writes = [r for r in recorder.detach() if r.op == "write"]
        span = 5 * 64 * KiB
        assert all(r.offset % span == 0 for r in writes)
        assert all(r.length % span == 0 for r in writes)
        # Under Hybrid nothing went to overflow.
        assert system.overflow_stats("btio_mpiio")["allocated"] == 0

    def test_total_bytes_match_grid(self):
        system = make_system(clients=4)
        result = btio_collective_benchmark(system, "A", steps=1)
        assert result.bytes_written == 64 ** 3 * CELL
        assert result.write_bandwidth > 0

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            btio_collective_benchmark(make_system(clients=4), "Z")

    def test_collective_agrees_with_direct_model_on_scheme_ordering(self):
        # The direct btio model and the true MPI-IO path must agree on
        # the paper's qualitative result: hybrid >= raid1 for BTIO.
        times = {}
        for scheme in ("raid1", "hybrid"):
            system = make_system(clients=4, scheme=scheme)
            times[scheme] = btio_collective_benchmark(
                system, "A", steps=1).elapsed
        assert times["hybrid"] < times["raid1"]
