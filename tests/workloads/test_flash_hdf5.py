"""FLASH through HDF5-lite: the paper's pattern from first principles."""

import pytest

from repro import CSARConfig, System
from repro.units import KiB
from repro.util.trace import TraceRecorder
from repro.workloads.flash_hdf5 import (
    CELLS_PER_BLOCK,
    N_PLOTVARS,
    N_UNKNOWNS,
    flash_hdf5_storage,
    flash_io_hdf5_benchmark,
)


def make_system(scheme="hybrid", clients=4, unit=64 * KiB):
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, stripe_unit=unit,
                             content_mode=False))


class TestFlashHdf5:
    def test_total_bytes(self):
        system = make_system()
        result = flash_io_hdf5_benchmark(system, blocks_per_rank=10)
        blocks = 4 * 10
        expected = blocks * CELLS_PER_BLOCK * (N_UNKNOWNS * 8
                                               + 2 * N_PLOTVARS * 4)
        assert result.bytes_written == expected
        assert result.write_bandwidth > 0

    def test_emergent_request_mix_matches_paper(self):
        # Section 6.6: "mostly small and medium size write requests
        # ranging from a few kilobytes to a few hundred kilobytes";
        # Section 6.7: 37-46% of requests under 2 KB.
        system = make_system()
        recorder = TraceRecorder(system)
        flash_io_hdf5_benchmark(system, blocks_per_rank=20)
        stats = recorder.detach().stats("write")
        assert 0.3 < stats["small_fraction_2k"] < 0.8
        assert stats["max"] <= 300 * KiB  # medium data chunks
        assert stats["max"] >= 20 * KiB

    def test_hybrid_storage_exceeds_raid1_at_64k_unit(self):
        # The Table 2 FLASH-at-64K result, emerging from the real
        # metadata path rather than a scripted mix.
        totals = {}
        for scheme in ("raid1", "hybrid"):
            system = make_system(scheme=scheme)
            flash_io_hdf5_benchmark(system, blocks_per_rank=12)
            totals[scheme] = flash_hdf5_storage(system)
        assert totals["hybrid"] > totals["raid1"]

    def test_hybrid_storage_shrinks_with_small_stripe_unit(self):
        def total(unit):
            system = make_system(unit=unit)
            flash_io_hdf5_benchmark(system, blocks_per_rank=12)
            return flash_hdf5_storage(system)

        assert total(8 * KiB) < total(64 * KiB)

    def test_scheme_ordering_matches_fig8(self):
        times = {}
        for scheme in ("raid0", "raid1", "raid5", "hybrid"):
            system = make_system(scheme=scheme)
            times[scheme] = flash_io_hdf5_benchmark(
                system, blocks_per_rank=12).elapsed
        assert times["raid0"] == min(times.values())
        # Hybrid within striking distance of the best redundant scheme.
        best_redundant = min(times["raid1"], times["raid5"])
        assert times["hybrid"] <= 1.25 * best_redundant
