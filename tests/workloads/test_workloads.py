"""Tests for the workload generators (behavioural, not bandwidth)."""

import pytest

from repro import CSARConfig, System
from repro.errors import ConfigError
from repro.units import KiB, MB
from repro.workloads import (
    btio_benchmark,
    cactus_benchio,
    flash_io_benchmark,
    full_stripe_write_bench,
    hartree_fock_argos,
    perf_benchmark,
    shared_stripe_bench,
    small_write_bench,
)
from repro.workloads.flashio import FLASH_SMALL_FRACTION, flash_request_sizes


def make_system(scheme="hybrid", clients=1, servers=6, **kw):
    kw.setdefault("content_mode", False)
    kw.setdefault("stripe_unit", 64 * KiB)
    return System(CSARConfig(scheme=scheme, num_servers=servers,
                             num_clients=clients, **kw))


class TestMicro:
    def test_full_stripe_counts_bytes(self):
        system = make_system()
        result = full_stripe_write_bench(system, total_bytes=8 * MB)
        assert result.bytes_written > 0
        assert result.elapsed > 0
        assert result.write_bandwidth > 0
        # Every written byte was stripe-aligned: no overflow used.
        assert system.overflow_stats("fullstripe")["allocated"] == 0

    def test_full_stripe_single_server_raid0(self):
        system = make_system(scheme="raid0", servers=1)
        result = full_stripe_write_bench(system, total_bytes=2 * MB)
        assert result.write_bandwidth > 0

    def test_small_write_bench_partial_stripes_only(self):
        system = make_system()
        result = small_write_bench(system, count=20)
        assert result.bytes_written == 20 * 64 * KiB
        # One-block writes are partial stripes: all bytes to overflow.
        assert system.overflow_stats("smallwrite")["allocated"] > 0

    def test_shared_stripe_uses_all_clients(self):
        system = make_system(scheme="raid5", clients=5)
        result = shared_stripe_bench(system, rounds=5)
        assert result.bytes_written == 5 * 5 * 64 * KiB
        assert "lock_wait_time" in result.extra

    def test_shared_stripe_lock_wait_positive_under_contention(self):
        system = make_system(scheme="raid5", clients=5)
        result = shared_stripe_bench(system, rounds=10)
        assert result.extra["lock_wait_time"] > 0

    def test_shared_stripe_no_lock_wait_without_locking(self):
        system = make_system(scheme="raid5", clients=5, locking=False)
        result = shared_stripe_bench(system, rounds=10)
        assert result.extra["lock_wait_time"] == 0


class TestPerf:
    def test_write_and_read_phases(self):
        system = make_system(clients=4)
        results = perf_benchmark(system, buffer_size=1 * MB, rounds=2)
        assert results["write"].bytes_written == 4 * 2 * 1 * MB
        assert results["read"].bytes_read == 4 * 2 * 1 * MB
        assert results["write"].write_bandwidth > 0
        assert results["read"].read_bandwidth > 0

    def test_flush_increases_elapsed(self):
        slow = perf_benchmark(make_system(clients=2),
                              buffer_size=1 * MB, rounds=2,
                              include_flush=True)["write"]
        fast = perf_benchmark(make_system(clients=2),
                              buffer_size=1 * MB, rounds=2,
                              include_flush=False)["write"]
        assert slow.elapsed > fast.elapsed


class TestBTIO:
    def test_initial_write(self):
        system = make_system(clients=4, scale=0.02)
        result = btio_benchmark(system, "A", scale=0.02)
        assert result.bytes_written > 0
        assert result.extra["nprocs"] == 4

    def test_overwrite_slower_than_initial_for_raid5(self):
        initial = btio_benchmark(make_system("raid5", clients=4, scale=0.02),
                                 "A", scale=0.02, overwrite=False)
        over = btio_benchmark(make_system("raid5", clients=4, scale=0.02),
                              "A", scale=0.02, overwrite=True)
        # Cold-cache read-modify-write hits disk: must be slower.
        assert over.write_bandwidth < initial.write_bandwidth

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            btio_benchmark(make_system(clients=4), "Z")

    def test_scale_reduces_steps_not_write_size(self):
        # Scaling must preserve the paper's per-write size (alignment
        # behaviour), shrinking only the number of checkpoint steps.
        sys_small = make_system(clients=4, scale=0.05)
        small = btio_benchmark(sys_small, "A", scale=0.05)
        sys_half = make_system(clients=4, scale=0.1)
        half = btio_benchmark(sys_half, "A", scale=0.1)
        assert half.bytes_written == 2 * small.bytes_written

    def test_writes_are_mostly_unaligned(self):
        # The defining BTIO property for Class B: partial stripes on
        # nearly every write (Class A at 4 procs is the aligned
        # exception — see test_btio_mpiio).
        system = make_system(scheme="hybrid", clients=4, scale=0.05)
        btio_benchmark(system, "B", scale=0.05)
        assert system.metrics.get("hybrid.partial_stripe_bytes") > 0
        assert system.metrics.get("hybrid.full_stripe_bytes") > 0


class TestFlash:
    def test_request_mix_matches_published_fraction(self):
        from repro.workloads.flashio import FLASH_TOTALS

        for nprocs, target in FLASH_SMALL_FRACTION.items():
            sizes = flash_request_sizes(nprocs, FLASH_TOTALS[nprocs])
            small = sum(1 for s in sizes if s < 2 * KiB) / len(sizes)
            assert small == pytest.approx(target, abs=0.02)

    def test_sizes_are_deterministic(self):
        assert flash_request_sizes(4, MB) == flash_request_sizes(4, MB)

    def test_benchmark_runs(self):
        system = make_system(clients=4)
        result = flash_io_benchmark(system, nprocs=4, scale=0.05)
        assert result.bytes_written == pytest.approx(0.05 * 45 * MB,
                                                     rel=0.01)
        assert 0.3 < result.extra["small_fraction"] < 0.6

    def test_flash_is_overflow_heavy_under_hybrid(self):
        # Section 6.7: FLASH's small requests mostly miss full stripes.
        system = make_system(clients=4)
        flash_io_benchmark(system, nprocs=4, scale=0.05)
        stats = system.overflow_stats("flash")
        assert stats["allocated"] > 0


class TestApps:
    def test_cactus(self):
        from repro.workloads.cactus import CHUNK

        system = make_system(clients=4)
        result = cactus_benchio(system, scale=0.01)
        # 400 MB/node at 1% = one 4 MiB chunk per node.
        assert result.bytes_written == 4 * CHUNK
        assert result.write_bandwidth > 0

    def test_hartree_fock_uses_kernel_module(self):
        system = make_system(clients=1)
        result = hartree_fock_argos(system, scale=0.02)
        assert result.bytes_written > 0
        # The flag is restored afterwards.
        assert system.client(0).via_kernel_module is False

    def test_hartree_fock_kernel_module_slows_small_requests(self):
        # Fig 8's levelling effect needs a real per-request cost.
        a = hartree_fock_argos(make_system(clients=1), scale=0.02)
        system = make_system(clients=1)
        client = system.client(0)
        # Same I/O without the kernel module crossing:
        from repro.storage.payload import Payload
        from repro.workloads.hartree_fock import REQUEST

        count = a.bytes_written // REQUEST

        def work():
            yield from client.create("direct")
            for i in range(count):
                yield from client.write("direct", i * REQUEST,
                                        Payload.virtual(REQUEST))
            yield from client.fsync("direct")

        elapsed, _ = system.timed(work())
        assert a.elapsed > elapsed
