"""Tests for the IOR-like synthetic benchmark."""

import pytest

from repro import CSARConfig, System
from repro.errors import ConfigError
from repro.units import KiB, MiB
from repro.workloads.synthetic import SyntheticSpec, synthetic_benchmark


def make_system(scheme="hybrid", clients=4):
    return System(CSARConfig(scheme=scheme, num_servers=6,
                             num_clients=clients, stripe_unit=64 * KiB,
                             content_mode=False))


class TestSpecValidation:
    def test_transfer_must_divide_block(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(block_size=1 * MiB, transfer_size=300 * KiB)

    def test_unknown_layout(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(layout="zigzag")

    def test_zero_segments(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(segments=0)


class TestRuns:
    def test_total_bytes(self):
        system = make_system()
        spec = SyntheticSpec(block_size=1 * MiB, transfer_size=256 * KiB,
                             segments=2)
        result = synthetic_benchmark(system, spec)
        assert result.bytes_written == 4 * 2 * MiB
        assert result.write_bandwidth > 0

    def test_read_back(self):
        system = make_system()
        spec = SyntheticSpec(block_size=512 * KiB, transfer_size=128 * KiB,
                             segments=1, read_back=True)
        result = synthetic_benchmark(system, spec)
        assert result.extra["read_bandwidth"] > 0

    def test_aligned_segmented_large_is_raid5_friendly(self):
        # Figure 4(a) territory: stripe-aligned large transfers.
        spec = SyntheticSpec(block_size=1280 * KiB, transfer_size=320 * KiB,
                             segments=2)  # 320 KiB = exactly one span
        system = make_system()
        synthetic_benchmark(system, spec)
        assert system.metrics.get("hybrid.partial_stripe_bytes") == 0

    def test_tiny_strided_is_raid1_territory(self):
        # Figure 4(b) territory: sub-stripe transfers.
        spec = SyntheticSpec(block_size=256 * KiB, transfer_size=64 * KiB,
                             segments=1, layout="strided")
        system = make_system()
        synthetic_benchmark(system, spec)
        assert system.metrics.get("hybrid.full_stripe_bytes") == 0

    def test_alignment_shift_creates_partials(self):
        spec = SyntheticSpec(block_size=1280 * KiB, transfer_size=320 * KiB,
                             segments=1, alignment_shift=100)
        system = make_system()
        synthetic_benchmark(system, spec)
        assert system.metrics.get("hybrid.partial_stripe_bytes") > 0

    def test_scheme_crossover_by_transfer_size(self):
        # The paper's headline, reproduced with the community's tool:
        # small transfers favour RAID1, large favour RAID5, Hybrid never
        # loses by much.
        def bandwidth(scheme, transfer):
            system = make_system(scheme=scheme, clients=2)
            spec = SyntheticSpec(block_size=max(transfer * 4, 1280 * KiB),
                                 transfer_size=transfer, segments=1)
            return synthetic_benchmark(system, spec).write_bandwidth

        small, large = 64 * KiB, 1280 * KiB
        assert bandwidth("raid1", small) > bandwidth("raid5", small)
        assert bandwidth("raid5", large) > bandwidth("raid1", large)
        for transfer in (small, large):
            best = max(bandwidth("raid1", transfer),
                       bandwidth("raid5", transfer))
            assert bandwidth("hybrid", transfer) >= 0.9 * best
